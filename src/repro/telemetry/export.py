"""Exporters: Chrome ``trace_event`` JSON, flat JSONL, and a summary table.

The Chrome format is the `trace_event` JSON-object form — a top-level
``{"traceEvents": [...]}`` — loadable directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Spans become ``"X"`` (complete) events, instant
markers become ``"i"`` events, and ``"M"`` metadata events name the
logical process/thread tracks (driver, partition tree, cluster tree, GPU
leaves).  Timestamps are microseconds relative to the tracer's origin.

The JSONL export is one JSON object per line — ``span``/``instant``
records first, then ``metric`` records — for ad-hoc ``jq``/pandas work.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable

from .tracer import TRACK_NAMES, SpanRecord

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "summary_table",
    "summary_dict",
    "write_summary_json",
]

#: Schema tag for :func:`summary_dict` / ``--trace-summary-json`` files.
SUMMARY_SCHEMA = "mrscan-telemetry-summary/1"


def _json_safe(value: Any) -> Any:
    """Coerce span/metric attribute values to JSON-encodable types."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars expose item()
        return _json_safe(value.item())
    except AttributeError:
        return str(value)


def chrome_trace_events(records: Iterable[SpanRecord], *, origin: float = 0.0) -> list[dict[str, Any]]:
    """Convert span records to Chrome ``traceEvents`` dicts (µs timestamps)."""
    events: list[dict[str, Any]] = []
    seen_tracks: set[tuple[int, int]] = set()
    for r in records:
        ev: dict[str, Any] = {
            "name": r.name,
            "cat": r.cat,
            "ph": r.ph,
            "ts": (r.ts - origin) * 1e6,
            "pid": r.pid,
            "tid": r.tid,
            "args": _json_safe(r.args),
        }
        if r.ph == "X":
            ev["dur"] = r.dur * 1e6
        elif r.ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)
        seen_tracks.add((r.pid, r.tid))

    meta: list[dict[str, Any]] = []
    for pid in sorted({p for p, _ in seen_tracks}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": TRACK_NAMES.get(pid, f"pid {pid}")},
            }
        )
    for pid, tid in sorted(seen_tracks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"node {tid}"},
            }
        )
    return meta + events


def to_chrome_trace(telemetry: Any) -> dict[str, Any]:
    """Build the full Chrome trace JSON object for a :class:`Telemetry`."""
    return {
        "traceEvents": chrome_trace_events(
            telemetry.tracer.records, origin=telemetry.tracer.origin
        ),
        "displayTimeUnit": "ms",
        "otherData": {"metrics": telemetry.metrics.as_dict()},
    }


def write_chrome_trace(path: str | Path, telemetry: Any) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    doc = to_chrome_trace(telemetry)
    Path(path).write_text(json.dumps(doc), encoding="utf-8")
    return len(doc["traceEvents"])


def jsonl_lines(telemetry: Any) -> Iterable[str]:
    """Yield one JSON line per span/instant/metric."""
    origin = telemetry.tracer.origin
    for r in telemetry.tracer.records:
        yield json.dumps(
            {
                "type": "span" if r.ph == "X" else "instant",
                "name": r.name,
                "cat": r.cat,
                "ts": r.ts - origin,
                "dur": r.dur,
                "pid": r.pid,
                "tid": r.tid,
                "id": r.span_id,
                "parent": r.parent,
                "depth": r.depth,
                "args": _json_safe(r.args),
            }
        )
    for name, payload in telemetry.metrics.as_dict().items():
        safe = dict(_json_safe(payload))
        instrument = safe.pop("type")
        yield json.dumps(
            {"type": "metric", "name": name, "instrument": instrument, **safe}
        )


def write_jsonl(path: str | Path, telemetry: Any) -> int:
    """Write the JSONL event log; returns the number of lines."""
    lines = list(jsonl_lines(telemetry))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return len(lines)


def summary_dict(telemetry: Any) -> dict[str, Any]:
    """Machine-readable run summary (schema ``mrscan-telemetry-summary/1``).

    The structured sibling of :func:`summary_table`, built so downstream
    consumers (``repro.tune.history``) never scrape the human text:

    - ``phases``: wall seconds per pipeline phase, from the driver's
      ``cat="phase"`` spans (``cluster.partial`` rolls up under
      ``cluster``, etc. — summed, since a serve daemon may run a phase
      many times in one telemetry lifetime).
    - ``spans``: the full rollup — count / total seconds / mean ms per
      span name.
    - ``metrics``: the metrics registry verbatim (JSON-safe).
    """
    spans = telemetry.tracer.spans()
    rollup: dict[str, dict[str, Any]] = {}
    phases: dict[str, float] = {}
    for s in spans:
        entry = rollup.setdefault(s.name, {"count": 0, "total_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += s.dur
        if s.cat == "phase":
            phase = s.name.split(".", 1)[0]
            phases[phase] = phases.get(phase, 0.0) + s.dur
    for entry in rollup.values():
        entry["mean_ms"] = 1e3 * entry["total_seconds"] / entry["count"]
    return {
        "schema": SUMMARY_SCHEMA,
        "phases": {k: phases[k] for k in sorted(phases)},
        "spans": {k: rollup[k] for k in sorted(rollup)},
        "n_instants": len(telemetry.tracer.instants()),
        "metrics": _json_safe(telemetry.metrics.as_dict()),
    }


def write_summary_json(path: str | Path, telemetry: Any) -> dict[str, Any]:
    """Write :func:`summary_dict` as JSON; returns the document."""
    doc = summary_dict(telemetry)
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return doc


def summary_table(telemetry: Any, *, top: int = 12) -> str:
    """Human-readable run summary: span rollup then the busiest metrics."""
    spans = telemetry.tracer.spans()
    rollup: dict[str, tuple[int, float]] = {}
    for s in spans:
        count, seconds = rollup.get(s.name, (0, 0.0))
        rollup[s.name] = (count + 1, seconds + s.dur)
    lines = ["telemetry summary", "-----------------"]
    if rollup:
        lines.append(f"{'span':<32} {'count':>7} {'total s':>10} {'mean ms':>10}")
        for name, (count, seconds) in sorted(
            rollup.items(), key=lambda kv: kv[1][1], reverse=True
        ):
            lines.append(
                f"{name:<32} {count:>7} {seconds:>10.4f} {1e3 * seconds / count:>10.3f}"
            )
    n_instants = len(telemetry.tracer.instants())
    if n_instants:
        lines.append(f"instant events: {n_instants}")
    metrics = telemetry.metrics.as_dict()
    # Fault/recovery counters get their own section — a chaos run's first
    # question is "what failed and what did the resilience layer do".
    fault_metrics = {
        name: payload
        for name, payload in metrics.items()
        if name.startswith("resilience.")
    }
    if fault_metrics:
        metrics = {k: v for k, v in metrics.items() if k not in fault_metrics}
        lines.append("")
        lines.append("faults & recovery")
        for name, payload in sorted(fault_metrics.items()):
            lines.append(f"{name:<44} {payload['value']:>14,.6g}")
    if metrics:
        lines.append("")
        lines.append(f"{'metric':<44} {'value':>14}")
        shown = 0
        for name, payload in sorted(metrics.items()):
            if shown >= top:
                lines.append(f"... and {len(metrics) - shown} more metrics")
                break
            if payload.get("type") == "histogram":
                value = (
                    f"n={payload['count']} mean={payload['mean']:.3g}"
                    if payload["count"]
                    else "n=0"
                )
                lines.append(f"{name:<44} {value:>14}")
            else:
                lines.append(f"{name:<44} {payload['value']:>14,.6g}")
            shown += 1
    return "\n".join(lines)
