"""Metrics: counters, gauges, and histograms with a named registry.

Where spans answer *when*, metrics answer *how much*: bytes up the merge
tree, kernel launches per leaf, distance ops, I/O volume.  The existing
stat objects (``DeviceStats``, ``NetworkTrace``, ``IOTrace``,
``MrScanGPUStats``, ``MergeOutcome``) feed the registry through the
adapter hooks in :mod:`repro.telemetry.adapters`.

The registry is thread-safe (instrument creation and updates take a
lock-free fast path where possible — plain float/int adds under a lock is
plenty at the rates the pipeline records).  A shared no-op registry,
:data:`NOOP_METRICS`, mirrors the tracer's zero-overhead off mode.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NoopMetrics",
    "NOOP_METRICS",
    "Quantile",
]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. peak device allocation, leaf count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: int | float) -> None:
        self.value = v

    def max(self, v: int | float) -> None:
        """Keep the maximum of the written values."""
        if v > self.value:
            self.value = v

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Deliberately not bucketed: the pipeline's distributions are small
    (one observation per leaf or node), so the exporters print the full
    five-number summary from the raw moments.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: int | float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class Quantile:
    """Percentile summary over a bounded reservoir of recent samples.

    :class:`Histogram` keeps only moments, which is enough for per-leaf
    batch stats but not for service latencies, where p50/p99 are the
    contract.  This instrument keeps the last ``capacity`` observations
    in a ring buffer (service latency distributions are dominated by
    recent behaviour; 4096 samples bound both memory and the sort cost
    of a ``percentile`` call) and answers arbitrary percentiles by
    nearest-rank over the retained window.
    """

    __slots__ = ("name", "capacity", "count", "_ring", "_write")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"quantile {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = int(capacity)
        self.count = 0  # total ever observed, not just retained
        self._ring: list[float] = []
        self._write = 0

    def observe(self, v: int | float) -> None:
        v = float(v)
        if len(self._ring) < self.capacity:
            self._ring.append(v)
        else:
            self._ring[self._write] = v
            self._write = (self._write + 1) % self.capacity
        self.count += 1

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile of the retained window; ``None`` when
        nothing has been observed.  ``p`` is in [0, 100]."""
        if not self._ring:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "quantile",
            "count": self.count,
            "retained": len(self._ring),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": max(self._ring) if self._ring else None,
        }


class Metrics:
    """Named instrument registry.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing instrument afterwards; asking for the same name with a
    different type is an error (it would silently split the data).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def quantile(self, name: str) -> Quantile:
        return self._get(name, Quantile)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            return iter(sorted(self._instruments.values(), key=lambda i: i.name))

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {inst.name: inst.as_dict() for inst in self}


class _NoopInstrument:
    """One object that answers every instrument method with nothing."""

    __slots__ = ()
    name = "noop"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, n: int | float = 1) -> None:
        return None

    def set(self, v: int | float) -> None:
        return None

    def max(self, v: int | float) -> None:
        return None

    def observe(self, v: int | float) -> None:
        return None

    def percentile(self, p: float) -> None:
        return None

    def as_dict(self) -> dict[str, Any]:
        return {}


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """Registry whose instruments discard everything (the off mode)."""

    enabled = False

    def counter(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def quantile(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def __iter__(self) -> Iterator[Any]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def get(self, name: str) -> None:
        return None

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {}


#: Shared no-op registry — the default everywhere metrics are optional.
NOOP_METRICS = NoopMetrics()
