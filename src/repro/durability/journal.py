"""The write-ahead run journal: append-only, fsync'd, sha256-chained.

One JSONL file records everything a crashed driver needs to know about
how far its run got: the run's config/dataset fingerprints, each phase
boundary crossed, and every leaf completion *as it happens* (via the
Network's ``on_result`` hook) — so a crash mid-round loses at most the
in-flight work, never the bookkeeping of finished work.

Record format (one JSON object per line)::

    {"seq": 3, "type": "leaf_done", "payload": {...},
     "prev": "<sha256 of record 2>", "digest": "<sha256 of this record>"}

``digest`` covers ``(seq, type, payload, prev)`` in canonical JSON, and
``prev`` chains to the previous record's digest (:data:`GENESIS` for the
first) — so replay detects reordering, tampering, and mid-file damage,
not just syntax errors.  Every append is flushed and ``fsync``'d before
returning: a record the caller saw written survives a driver SIGKILL.

Replay is torn-tail tolerant, which is the write-ahead contract: the
*final* line of a journal may be garbage (the driver died mid-``write``)
and is silently dropped; damage anywhere earlier means the file does not
say what it said when it was written and raises
:class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..errors import JournalError

__all__ = ["GENESIS", "JournalRecord", "RunJournal", "replay_journal"]

logger = logging.getLogger(__name__)

#: ``prev`` digest of the first record in every journal.
GENESIS = "0" * 64


def _record_digest(seq: int, rtype: str, payload: dict, prev: str) -> str:
    body = json.dumps(
        {"seq": seq, "type": rtype, "payload": payload, "prev": prev},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One replayed (or just-written) journal record."""

    seq: int
    type: str
    payload: dict
    prev: str
    digest: str


def replay_journal(path: str | Path) -> list[JournalRecord]:
    """Read and verify a journal; returns its records in order.

    Tolerates exactly one torn record at the *end* of the file (dropped
    with a warning — the write-ahead semantics of a crash mid-append).
    Any earlier parse failure, chain break, or digest mismatch raises
    :class:`JournalError`.  A missing file replays as empty.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[JournalRecord] = []
    prev = GENESIS
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        is_last = lineno == len(lines)
        if not line.strip():
            if is_last:
                break
            raise JournalError(f"{path}:{lineno}: blank line inside the journal")
        try:
            raw = json.loads(line)
            rec = JournalRecord(
                seq=int(raw["seq"]),
                type=str(raw["type"]),
                payload=dict(raw["payload"]),
                prev=str(raw["prev"]),
                digest=str(raw["digest"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if is_last:
                logger.warning(
                    "%s:%d: dropping torn final journal record (%s)",
                    path, lineno, type(exc).__name__,
                )
                break
            raise JournalError(f"{path}:{lineno}: unreadable record: {exc}") from exc
        ok = (
            rec.seq == len(records)
            and rec.prev == prev
            and rec.digest == _record_digest(rec.seq, rec.type, rec.payload, rec.prev)
        )
        if not ok:
            if is_last:
                logger.warning(
                    "%s:%d: dropping final record with a broken hash chain",
                    path, lineno,
                )
                break
            raise JournalError(
                f"{path}:{lineno}: hash chain broken (journal corrupted or "
                f"edited)"
            )
        records.append(rec)
        prev = rec.digest
    return records


class RunJournal:
    """Appender over one journal file.

    Opening an existing journal replays (and verifies) it first, so
    appends continue the hash chain; a fresh file starts at
    :data:`GENESIS`.  ``fsync`` is on by default — turn it off only in
    benchmarks that measure its cost.
    """

    def __init__(
        self, path: str | Path, *, fsync: bool = True, metrics=None
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.metrics = metrics
        self.records: list[JournalRecord] = replay_journal(self.path)
        self._prev = self.records[-1].digest if self.records else GENESIS
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Re-serialize what replay accepted when the file ends with a torn
        # record: appending after garbage would corrupt the chain for the
        # *next* replay.
        if self.records or self.path.exists():
            good = "".join(
                json.dumps(
                    {
                        "seq": r.seq, "type": r.type, "payload": r.payload,
                        "prev": r.prev, "digest": r.digest,
                    },
                    sort_keys=True, separators=(",", ":"),
                ) + "\n"
                for r in self.records
            )
            existing = (
                self.path.read_text(encoding="utf-8") if self.path.exists() else ""
            )
            if existing != good:
                tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(good, encoding="utf-8")
                os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, rtype: str, payload: dict | None = None) -> JournalRecord:
        """Write one record; durable (fsync'd) before this returns."""
        payload = dict(payload or {})
        seq = len(self.records)
        digest = _record_digest(seq, rtype, payload, self._prev)
        rec = JournalRecord(
            seq=seq, type=rtype, payload=payload, prev=self._prev, digest=digest
        )
        line = json.dumps(
            {
                "seq": seq, "type": rtype, "payload": payload,
                "prev": self._prev, "digest": digest,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records.append(rec)
        self._prev = digest
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("durability.journal_records").inc()
            self.metrics.counter("durability.journal_bytes").inc(len(line) + 1)
        return rec

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def of_type(self, rtype: str) -> Iterator[JournalRecord]:
        return (r for r in self.records if r.type == rtype)

    def last(self, rtype: str) -> JournalRecord | None:
        out = None
        for rec in self.of_type(rtype):
            out = rec
        return out

    def has(self, rtype: str) -> bool:
        return any(True for _ in self.of_type(rtype))

    def __len__(self) -> int:
        return len(self.records)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
