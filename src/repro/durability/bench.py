"""Durability benchmarks: the ``mrscan bench-durability`` harness.

One question, written to ``BENCH_PR5.json``: what does the write-ahead
journal + phase checkpointing cost on an end-to-end run?  The same
dataset is clustered twice — once plain, once with ``run_dir`` set — and
the report records both wall times, the overhead fraction, and what the
durable run actually wrote (journal records/bytes, checkpoint bytes).
The journal fsyncs every record and the checkpoints persist the
partition plan, merge table, and final labels, so the overhead is real
I/O; the acceptance bar is a small single-digit percentage on a
1M-point run.

Timing discipline matches :mod:`repro.runtime.bench`: one untimed warmup
run, then the best of ``repeats`` timed runs per mode.
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..core.config import MrScanConfig
from ..core.pipeline import run_pipeline
from ..points import PointSet

__all__ = ["run_durability_bench"]


def _synthetic_points(n_points: int, seed: int) -> PointSet:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 10.0, size=(16, 2))
    which = rng.integers(0, len(centers), size=n_points)
    coords = centers[which] + rng.normal(0.0, 0.15, size=(n_points, 2))
    return PointSet.from_coords(coords)


def _dir_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def run_durability_bench(
    *,
    n_points: int = 1_000_000,
    n_leaves: int = 8,
    repeats: int = 3,
    seed: int = 0,
    eps: float = 0.15,
    minpts: int = 8,
    output: str | Path | None = None,
) -> dict[str, Any]:
    """Time the pipeline with and without a run directory."""
    points = _synthetic_points(n_points, seed)

    def _one_run(run_dir: str | None) -> tuple[float, Any]:
        config = MrScanConfig(
            eps=eps,
            minpts=minpts,
            n_leaves=n_leaves,
            run_dir=run_dir,
        )
        t0 = time.perf_counter()
        result = run_pipeline(points, config)
        return time.perf_counter() - t0, result

    # Baseline: warmup + best-of timed runs without durability.
    _one_run(None)
    base_seconds = min(_one_run(None)[0] for _ in range(max(1, repeats)))

    # Durable: fresh run directory per run (fresh journal + checkpoints).
    tmp_root = Path(tempfile.mkdtemp(prefix="mrscan-bench-durability-"))
    try:
        durable_seconds = float("inf")
        journal_records = journal_bytes = checkpoint_bytes = 0
        labels = None
        for i in range(max(1, repeats)):
            run_dir = tmp_root / f"run-{i}"
            seconds, result = _one_run(str(run_dir))
            durable_seconds = min(durable_seconds, seconds)
            journal_path = run_dir / "journal.jsonl"
            journal_records = sum(1 for _ in journal_path.open())
            journal_bytes = journal_path.stat().st_size
            checkpoint_bytes = _dir_bytes(run_dir / "checkpoints")
            labels = result.labels
        # The durable run must not change the answer.
        baseline_labels = _one_run(None)[1].labels
        labels_identical = bool(np.array_equal(labels, baseline_labels))
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)

    overhead = (durable_seconds - base_seconds) / base_seconds if base_seconds else 0.0
    report: dict[str, Any] = {
        "bench": "durability",
        "n_points": n_points,
        "n_leaves": n_leaves,
        "eps": eps,
        "minpts": minpts,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": {"wall_seconds": base_seconds},
        "durable": {
            "wall_seconds": durable_seconds,
            "journal_records": journal_records,
            "journal_bytes": journal_bytes,
            "checkpoint_bytes": checkpoint_bytes,
        },
        "overhead_fraction": overhead,
        "labels_identical": labels_identical,
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=1), encoding="utf-8")
    return report
