"""Per-run directory: journal + phase checkpoints + resume state machine.

A run started with ``run_dir`` set owns a directory::

    <run_dir>/
        journal.jsonl        write-ahead run journal (repro.durability.journal)
        config.json          human-readable config snapshot + fingerprints
        checkpoints/         phase checkpoints (partition.bin, merge.bin, ...)
        checkpoints/leaves/  per-leaf spill store (repro.resilience)

Fingerprints
------------
Resume refuses to mix state from different runs: ``run_begin`` records a
fingerprint of the *label-affecting* config fields (:data:`LABEL_FIELDS`)
and of the dataset bytes, and :meth:`RunDirectory.start` raises
:class:`~repro.errors.DurabilityError` when a resume's config or points
disagree.  Execution knobs — transport, telemetry, validation level,
retry budgets, fault plans — are deliberately *outside* the fingerprint:
resuming a crashed ``local`` run under ``--transport shm`` (or with a
different fault plan) is legal because none of them can change labels.

Resume state machine
--------------------
Replaying the journal classifies each phase:

* ``partition`` — restorable iff a ``partition_done`` record *and* a
  readable partition checkpoint exist (the record is written only after
  the checkpoint, so the pair is the invariant);
* ``cluster`` — never restored wholesale: the cluster phase re-runs and
  each completed leaf is recovered from its own spill checkpoint (the
  ``leaf_done`` journal records prove which leaves skipped
  re-clustering);
* ``merge`` — restorable iff ``merge_done`` + a readable merge
  checkpoint;
* ``sweep``/complete — a run with ``run_end`` and a readable sweep
  checkpoint short-circuits entirely and returns the persisted labels.

A restorable phase whose checkpoint turns out corrupt downgrades to
"re-run" (the load raises ``CheckpointError``, the state machine treats
it as absent) — corruption costs time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import logging
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import DurabilityError
from ..points import PointSet
from .checkpoints import PhaseCheckpointStore
from .journal import RunJournal

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a core cycle)
    from ..core.config import MrScanConfig

__all__ = [
    "LABEL_FIELDS",
    "config_fingerprint",
    "dataset_fingerprint",
    "ResumeState",
    "RunDirectory",
]

logger = logging.getLogger(__name__)

#: Config fields that can change the labelling.  Everything else —
#: transport, telemetry, validate level, retry/timeout/failover budgets,
#: fault plans, checkpoint locations — only changes *how* the run
#: executes, so resume accepts any value for them.
LABEL_FIELDS = (
    "eps",
    "minpts",
    "n_leaves",
    "fanout",
    "use_densebox",
    "claim_box_borders",
    "rebalance_partitions",
    "shadow_representatives",
    "partition_output",
    "leaf_algorithm",
)


def config_fingerprint(config: MrScanConfig) -> str:
    """sha256 over the label-affecting config fields.

    The resolved cluster engine is fingerprinted too: engines produce
    identical labels, but a resume must re-run under the engine the
    original run recorded rather than silently replay a different one's
    checkpoints.
    """
    payload = {name: getattr(config, name) for name in LABEL_FIELDS}
    payload["partition_nodes"] = config.partition_nodes
    payload["cluster_engine"] = config.resolved_cluster_engine()
    # Partition-split hints change the partition plan (and hence label
    # numbering), so a resume under different hints must refuse.
    hints = getattr(config, "partition_hints", None)
    if hints is not None:
        payload["partition_hints"] = hints.as_dict()
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def dataset_fingerprint(points: PointSet) -> str:
    """sha256 over the dataset's ids, coordinates, and weights."""
    h = hashlib.sha256()
    h.update(str(len(points)).encode())
    h.update(points.ids.tobytes())
    h.update(points.coords.tobytes())
    h.update(points.weights.tobytes())
    return h.hexdigest()


@dataclass
class ResumeState:
    """What the journal + checkpoints say can be skipped."""

    resumed: bool = False
    partition_restorable: bool = False
    merge_restorable: bool = False
    complete: bool = False
    #: Leaves the journal records as completed in the crashed run.
    leaves_done: set = field(default_factory=set)
    #: Phases actually restored from checkpoints (filled by the pipeline).
    restored: list = field(default_factory=list)


class RunDirectory:
    """The durable home of one (possibly multi-attempt) run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.path / "journal.jsonl"
        self.config_path = self.path / "config.json"
        self.checkpoint_root = self.path / "checkpoints"
        self.leaf_checkpoint_dir = self.checkpoint_root / "leaves"
        self.phases = PhaseCheckpointStore(self.checkpoint_root)
        self.leaf_checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.journal: RunJournal | None = None

    # ------------------------------------------------------------------ #

    def _wipe(self) -> None:
        """Fresh-start semantics: drop journal and every checkpoint."""
        if self.journal_path.exists():
            self.journal_path.unlink()
        self.phases.clear()
        if self.leaf_checkpoint_dir.exists():
            shutil.rmtree(self.leaf_checkpoint_dir)
        self.leaf_checkpoint_dir.mkdir(parents=True, exist_ok=True)

    def start(
        self,
        points: PointSet,
        config: MrScanConfig,
        *,
        resume: bool,
        metrics=None,
        tracer=None,
    ) -> ResumeState:
        """Open the journal and classify what a resume may skip.

        Without ``resume``, any previous state in the directory is wiped
        and a fresh ``run_begin`` is journaled.  With it, the journal is
        replayed, the config/dataset fingerprints are verified against
        the original ``run_begin`` (:class:`DurabilityError` on
        mismatch), and a ``resume_begin`` marker is appended.
        """
        cfg_fp = config_fingerprint(config)
        data_fp = dataset_fingerprint(points)
        if not resume:
            self._wipe()
        self.journal = RunJournal(self.journal_path, metrics=metrics)
        if tracer is not None:
            tracer.instant(
                "journal.replay",
                cat="durability",
                n_records=len(self.journal),
                resume=resume,
            )
        state = ResumeState(resumed=resume)
        begin = self.journal.last("run_begin")
        if resume and begin is not None:
            if begin.payload.get("config_fingerprint") != cfg_fp:
                raise DurabilityError(
                    f"cannot resume {self.path}: the run directory was "
                    "written by a run with different label-affecting "
                    "config (eps/minpts/topology/...)"
                )
            if begin.payload.get("dataset_fingerprint") != data_fp:
                raise DurabilityError(
                    f"cannot resume {self.path}: dataset fingerprint "
                    "mismatch (different input points)"
                )
            self.journal.append("resume_begin", {"n_prior_records": len(self.journal)})
            state.partition_restorable = self.journal.has("partition_done") and (
                self.phases.has("partition")
            )
            state.merge_restorable = self.journal.has("merge_done") and (
                self.phases.has("merge")
            )
            state.complete = self.journal.has("run_end") and self.phases.has("sweep")
            state.leaves_done = {
                int(rec.payload["leaf_id"]) for rec in self.journal.of_type("leaf_done")
            }
            logger.info(
                "resume %s: %d journal record(s); partition %s, %d leaf "
                "checkpoint(s), merge %s, complete %s",
                self.path,
                len(self.journal),
                "restorable" if state.partition_restorable else "re-runs",
                len(state.leaves_done),
                "restorable" if state.merge_restorable else "re-runs",
                state.complete,
            )
        else:
            if resume:
                logger.warning(
                    "resume requested but %s holds no run_begin record; "
                    "starting fresh", self.path,
                )
                state.resumed = False
            self.journal.append(
                "run_begin",
                {
                    "config_fingerprint": cfg_fp,
                    "dataset_fingerprint": data_fp,
                    "n_points": len(points),
                    "transport": config.resolved_transport(),
                    "transport_workers": config.transport_workers,
                    "cluster_engine": config.resolved_cluster_engine(),
                    "n_leaves": config.n_leaves,
                    "fanout": config.fanout,
                },
            )
            self.config_path.write_text(
                json.dumps(
                    {
                        "config_fingerprint": cfg_fp,
                        "dataset_fingerprint": data_fp,
                        "n_points": len(points),
                        **{name: getattr(config, name) for name in LABEL_FIELDS},
                        "partition_nodes": config.partition_nodes,
                    },
                    indent=1,
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
        return state

    def note(self, rtype: str, payload: dict | None = None) -> None:
        """Append one journal record (no-op before :meth:`start`)."""
        if self.journal is not None:
            self.journal.append(rtype, payload)

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
            self.journal = None
