"""Durable ingest log for the serve daemon: batch blobs + WAL records.

A long-lived daemon (:mod:`repro.serve`) cannot re-read "the input file"
on restart — its dataset is the base load plus every batch it has ever
acknowledged.  This module makes that sequence durable with the same
write-ahead discipline the batch pipeline uses (:mod:`.journal`):

1. the batch's points are written to an **atomic blob**
   (``batches/batch_<seq>.npz``: tmp + fsync + ``os.replace``, digest in
   the journal record, mirroring
   :class:`~repro.durability.checkpoints.PhaseCheckpointStore` — which
   cannot be reused directly because it is restricted to the three
   pipeline phase names);
2. only after the daemon has *committed* the batch to its in-memory
   state is an ``ingest_done`` record appended (flushed + fsync'd) to
   ``ingest.jsonl``;
3. the client's ack is sent only after step 2 returns.

So a SIGKILL at any point loses at most the unacked in-flight batch: a
blob without its ``ingest_done`` record is ignored on replay (and a torn
final journal line is dropped by :func:`~repro.durability.journal.replay_journal`).
``mrscan serve --resume`` replays ``acked()`` batches — digest-verified
against their blobs — on top of the base dataset to reconstruct the
exact acknowledged state.

Record schema (documented in docs/INTERNALS.md)::

    serve_begin  {"config": <config fingerprint>, "base": <dataset digest>,
                  "n_base": <int>}
    ingest_done  {"seq": <int>, "n_points": <int>, "digest": <blob sha256>,
                  "dirty_leaves": [<leaf ids re-clustered>],
                  "n_touched_cells": <int>}
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import JournalError
from .journal import RunJournal

__all__ = ["AckedIngest", "BatchStore", "IngestLog"]


def batch_digest(coords: np.ndarray, ids: np.ndarray) -> str:
    """Content digest of one ingest batch (dtype-normalised)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(coords, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class AckedIngest:
    """One replayed, digest-verified, acknowledged ingest batch."""

    seq: int
    coords: np.ndarray
    ids: np.ndarray
    dirty_leaves: tuple[int, ...]


class BatchStore:
    """Atomic ``.npz`` blob per ingest batch under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, seq: int) -> Path:
        return self.root / f"batch_{seq:06d}.npz"

    def has(self, seq: int) -> bool:
        return self._path(seq).exists()

    def save(self, seq: int, coords: np.ndarray, ids: np.ndarray) -> str:
        """Write the blob durably; returns its content digest."""
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        path = self._path(seq)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, coords=coords, ids=ids)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return batch_digest(coords, ids)

    def load(self, seq: int) -> tuple[np.ndarray, np.ndarray]:
        with np.load(self._path(seq)) as npz:
            return npz["coords"], npz["ids"]


class IngestLog:
    """WAL over a daemon's acknowledged ingests.

    Owns an ``ingest.jsonl`` :class:`~repro.durability.journal.RunJournal`
    and a ``batches/`` :class:`BatchStore` under ``root`` (typically the
    daemon's run-dir).  The write-ahead order is *blob first, record
    second*: :meth:`save_batch` before the daemon mutates state,
    :meth:`commit` after the mutation succeeds, client ack after commit.
    """

    def __init__(self, root: str | Path, *, fsync: bool = True, metrics=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal = RunJournal(
            self.root / "ingest.jsonl", fsync=fsync, metrics=metrics
        )
        self.batches = BatchStore(self.root / "batches")
        self.metrics = metrics

    # ------------------------------------------------------------------ #
    # Session identity
    # ------------------------------------------------------------------ #

    def open_serve(self, *, config: str, base: str, n_base: int) -> bool:
        """Record (or verify) the serving session's identity.

        First open journals a ``serve_begin``; a resume verifies the
        stored fingerprints match — serving different data or config
        against an old log is a :class:`~repro.errors.JournalError`, the
        same wipe-or-verify rule run-dirs enforce.  Returns ``True`` on
        a fresh log, ``False`` on a verified resume.
        """
        begun = self.journal.last("serve_begin")
        if begun is None:
            self.journal.append(
                "serve_begin",
                {"config": config, "base": base, "n_base": int(n_base)},
            )
            return True
        for key, got in (("config", config), ("base", base), ("n_base", int(n_base))):
            want = begun.payload.get(key)
            if want != got:
                raise JournalError(
                    f"ingest log {self.journal.path} belongs to a different "
                    f"serving session: {key} was {want!r}, now {got!r} "
                    "(use a fresh --run-dir)"
                )
        return False

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    @property
    def next_seq(self) -> int:
        return sum(1 for _ in self.journal.of_type("ingest_done"))

    def save_batch(self, seq: int, coords: np.ndarray, ids: np.ndarray) -> str:
        """Step 1 of the WAL: persist the blob; returns its digest."""
        return self.batches.save(seq, coords, ids)

    def commit(
        self,
        seq: int,
        *,
        digest: str,
        n_points: int,
        dirty_leaves,
        n_touched_cells: int,
    ) -> None:
        """Step 2: journal ``ingest_done`` — the batch is now acked."""
        self.journal.append(
            "ingest_done",
            {
                "seq": int(seq),
                "n_points": int(n_points),
                "digest": digest,
                "dirty_leaves": sorted(int(x) for x in dirty_leaves),
                "n_touched_cells": int(n_touched_cells),
            },
        )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def acked(self) -> list[AckedIngest]:
        """All acknowledged batches, in order, digest-verified."""
        out: list[AckedIngest] = []
        for rec in self.journal.of_type("ingest_done"):
            seq = int(rec.payload["seq"])
            if not self.batches.has(seq):
                raise JournalError(
                    f"ingest {seq} is journaled as acked but its batch blob "
                    f"is missing under {self.batches.root}"
                )
            coords, ids = self.batches.load(seq)
            if batch_digest(coords, ids) != rec.payload["digest"]:
                raise JournalError(
                    f"batch blob for acked ingest {seq} fails its digest "
                    "(corrupt spill file)"
                )
            out.append(
                AckedIngest(
                    seq=seq,
                    coords=coords,
                    ids=ids,
                    dirty_leaves=tuple(rec.payload.get("dirty_leaves", ())),
                )
            )
        return out

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "IngestLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
