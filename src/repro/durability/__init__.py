"""Job-level durability: run journal, phase checkpoints, crash resume.

The resilience layer (:mod:`repro.resilience`) keeps a *live* run going
through node faults; this package makes the run itself durable, in the
checkpoint/restart spirit of large MPI+GPU jobs: a per-run directory
holds a write-ahead journal (:mod:`.journal`) of everything the driver
has completed, plus phase-boundary checkpoints (:mod:`.checkpoints`)
from which ``mrscan --run-dir D --resume`` reconstructs pipeline state
after a driver crash and re-executes only the unfinished work — with
labels byte-identical to an uninterrupted run.

See :mod:`.rundir` for the directory layout, the fingerprint rules, and
the resume state machine.
"""

from .checkpoints import PHASE_NAMES, PhaseCheckpointStore
from .ingestlog import AckedIngest, BatchStore, IngestLog, batch_digest
from .journal import GENESIS, JournalRecord, RunJournal, replay_journal
from .rundir import (
    LABEL_FIELDS,
    ResumeState,
    RunDirectory,
    config_fingerprint,
    dataset_fingerprint,
)

__all__ = [
    "GENESIS",
    "JournalRecord",
    "RunJournal",
    "replay_journal",
    "PHASE_NAMES",
    "PhaseCheckpointStore",
    "AckedIngest",
    "BatchStore",
    "IngestLog",
    "batch_digest",
    "LABEL_FIELDS",
    "ResumeState",
    "RunDirectory",
    "config_fingerprint",
    "dataset_fingerprint",
]
