"""Phase-boundary checkpoints: partition plan, merge table, sweep output.

The per-*leaf* spill store (:class:`repro.resilience.LeafCheckpointStore`)
makes the cluster phase resumable one leaf at a time; this store does the
same for the other three phase boundaries, each written exactly once when
its phase completes (and validates — the journal's write-ahead
discipline: a checkpoint on disk has passed its phase's invariant
checks).

Payloads are pickled whole — a ``PartitionPhaseResult``, the merge's
``(root_summary, GlobalIdAssignment)`` pair, the sweep's
``(labels, core_mask)`` arrays — into ``<phase>.bin`` plus a JSON
manifest with a sha256 digest, written via temp-file + ``os.replace``
with the manifest last, exactly like the leaf store: a crash
mid-checkpoint leaves no manifest and the phase simply re-runs.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any

from ..errors import CheckpointError
from ..resilience.checkpoint import CORRUPT_CHECKPOINT_ERRORS

__all__ = ["PHASE_NAMES", "PhaseCheckpointStore"]

logger = logging.getLogger(__name__)

#: Phase boundaries this store checkpoints (cluster is covered per-leaf).
PHASE_NAMES = ("partition", "merge", "sweep")


class PhaseCheckpointStore:
    """Atomic save/load of one pickled payload per pipeline phase."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _data_path(self, phase: str) -> Path:
        return self.root / f"{phase}.bin"

    def _meta_path(self, phase: str) -> Path:
        return self.root / f"{phase}.json"

    def _check_phase(self, phase: str) -> None:
        if phase not in PHASE_NAMES:
            raise CheckpointError(
                f"unknown phase {phase!r}; expected one of {PHASE_NAMES}"
            )

    def has(self, phase: str) -> bool:
        self._check_phase(phase)
        return self._data_path(phase).exists() and self._meta_path(phase).exists()

    def save(self, phase: str, payload: Any) -> Path:
        """Persist one phase's payload atomically; returns the data path."""
        self._check_phase(phase)
        blob = pickle.dumps(payload)
        data_path = self._data_path(phase)
        tmp = data_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, data_path)
        finally:
            if tmp.exists():
                tmp.unlink()
        manifest = {
            "phase": phase,
            "n_bytes": len(blob),
            "digest": hashlib.sha256(blob).hexdigest(),
        }
        meta_path = self._meta_path(phase)
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        meta_tmp.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
        os.replace(meta_tmp, meta_path)
        return data_path

    def load(self, phase: str) -> Any:
        """Recover one phase's payload, verifying the manifest digest.

        Raises :class:`CheckpointError` on a missing, truncated, or
        digest-mismatched checkpoint — callers treat that as "this phase
        re-runs", never as a fatal error.
        """
        self._check_phase(phase)
        data_path = self._data_path(phase)
        meta_path = self._meta_path(phase)
        if not (data_path.exists() and meta_path.exists()):
            raise CheckpointError(f"no {phase} checkpoint under {self.root}")
        try:
            manifest = json.loads(meta_path.read_text(encoding="utf-8"))
            blob = data_path.read_bytes()
            if manifest.get("digest") != hashlib.sha256(blob).hexdigest():
                logger.warning(
                    "%s checkpoint digest mismatch under %s; phase will re-run",
                    phase, self.root,
                )
                raise CheckpointError(
                    f"{phase} checkpoint digest mismatch (corrupt file)"
                )
            return pickle.loads(blob)
        except CheckpointError:
            raise
        except CORRUPT_CHECKPOINT_ERRORS as exc:
            logger.warning(
                "unreadable %s checkpoint under %s (%s: %s); phase will re-run",
                phase, self.root, type(exc).__name__, exc,
            )
            raise CheckpointError(
                f"unreadable {phase} checkpoint: {exc}"
            ) from exc

    def clear(self) -> int:
        """Delete all phase checkpoints; returns how many were present."""
        n = 0
        for phase in PHASE_NAMES:
            for path in (self._data_path(phase), self._meta_path(phase)):
                if path.exists():
                    path.unlink()
                    n += 1
        return n
