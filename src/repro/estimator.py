"""Scikit-learn-style estimator facade.

:class:`MrScanClusterer` mirrors ``sklearn.cluster.DBSCAN``'s interface
(``eps`` / ``min_samples`` / ``fit`` / ``fit_predict`` / trailing-
underscore attributes) so existing DBSCAN call sites can switch to the
distributed pipeline by changing one import.  No scikit-learn dependency
— just the same conventions.
"""

from __future__ import annotations

import numpy as np

from .core.pipeline import mrscan
from .core.result import MrScanResult
from .errors import ConfigError
from .points import PointSet

__all__ = ["MrScanClusterer"]


class MrScanClusterer:
    """DBSCAN-compatible estimator running the Mr. Scan pipeline.

    Parameters
    ----------
    eps, min_samples:
        The DBSCAN parameters (sklearn naming; ``min_samples`` counts the
        point itself, matching both sklearn and this package).
    n_leaves:
        Simulated GPGPU leaves for the clustering tree.
    **pipeline_kwargs:
        Forwarded to :class:`repro.core.MrScanConfig` (``fanout``,
        ``use_densebox``, ``partition_output``, ...).

    Attributes (after ``fit``)
    --------------------------
    ``labels_`` — cluster per sample (-1 noise); ``core_sample_indices_``
    — indices of core samples; ``components_`` — core sample coordinates;
    ``n_clusters_`` — cluster count; ``result_`` — the full
    :class:`MrScanResult`.
    """

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        *,
        n_leaves: int = 4,
        **pipeline_kwargs,
    ) -> None:
        self.eps = eps
        self.min_samples = min_samples
        self.n_leaves = n_leaves
        self.pipeline_kwargs = pipeline_kwargs
        self.labels_: np.ndarray | None = None
        self.core_sample_indices_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.n_clusters_: int | None = None
        self.result_: MrScanResult | None = None

    def fit(self, X: np.ndarray) -> "MrScanClusterer":
        """Cluster ``X`` (array-like of shape ``(n_samples, 2)``)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != 2:
            raise ConfigError(
                f"the distributed pipeline is 2-D; got shape {X.shape} "
                "(use repro.dbscan.dbscan_nd for other dimensions)"
            )
        points = PointSet.from_coords(X)
        result = mrscan(
            points,
            self.eps,
            self.min_samples,
            n_leaves=self.n_leaves,
            **self.pipeline_kwargs,
        )
        self.result_ = result
        self.labels_ = result.labels
        self.core_sample_indices_ = np.flatnonzero(result.core_mask)
        self.components_ = X[result.core_mask]
        self.n_clusters_ = result.n_clusters
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """``fit(X)`` and return ``labels_``."""
        return self.fit(X).labels_

    def get_params(self) -> dict:
        """sklearn-style parameter introspection."""
        return {
            "eps": self.eps,
            "min_samples": self.min_samples,
            "n_leaves": self.n_leaves,
            **self.pipeline_kwargs,
        }
