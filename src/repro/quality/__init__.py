"""Clustering-quality evaluation (the Fig 11 metric)."""

from .dbdc import dbdc_quality_score, QualityReport

__all__ = ["dbdc_quality_score", "QualityReport"]
