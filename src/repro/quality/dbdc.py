"""The DBDC quality metric (§5.1.3, from Januzaj et al., EDBT'04).

"The metric assigns a quality score between 0 and 1 to each point as
|A∩B| / |A∪B|, where A is the cluster the point belongs to in DBSCAN's
output, and B is the equivalent cluster from Mr. Scan's output.  If a
point is misidentified as a noise or non-noise point, it gets a quality
score of 0.  The final quality score is an average of the points' quality
scores."

Noise-noise agreement scores 1 (both outputs call the point noise: they
agree perfectly about it; scoring it 0 would bound the metric away from 1
even for identical outputs, contradicting "this metric is maximized when
all clusters found contain the exact same points ... and when all noise
points are identical as well").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..points import NOISE

__all__ = ["QualityReport", "dbdc_quality_score"]


@dataclass(frozen=True)
class QualityReport:
    """Breakdown of a DBDC comparison."""

    score: float
    n_points: int
    n_label_mismatch: int  # noise in one output, clustered in the other
    n_perfect: int  # per-point score exactly 1.0
    mean_overlap: float  # average |A∩B|/|A∪B| over co-clustered points

    def __str__(self) -> str:
        return (
            f"DBDC quality {self.score:.4f} over {self.n_points:,} points "
            f"({self.n_label_mismatch} noise mismatches)"
        )


def dbdc_quality_score(
    reference_labels: np.ndarray, candidate_labels: np.ndarray
) -> QualityReport:
    """Score ``candidate_labels`` against ``reference_labels``.

    Labels use the package convention (-1 = noise).  Runs in
    O(n + #distinct-label-pairs): per-point scores depend only on the
    sizes of each point's reference cluster, candidate cluster, and their
    intersection, all computed from one pass over the label pairs.
    """
    ref = np.asarray(reference_labels)
    cand = np.asarray(candidate_labels)
    if ref.shape != cand.shape:
        raise ConfigError(f"label arrays disagree: {ref.shape} vs {cand.shape}")
    n = len(ref)
    if n == 0:
        return QualityReport(
            score=1.0, n_points=0, n_label_mismatch=0, n_perfect=0, mean_overlap=1.0
        )

    ref_noise = ref == NOISE
    cand_noise = cand == NOISE
    mismatch = ref_noise != cand_noise
    both_noise = ref_noise & cand_noise
    both_clustered = ~ref_noise & ~cand_noise

    scores = np.zeros(n, dtype=np.float64)
    scores[both_noise] = 1.0

    if np.any(both_clustered):
        idx = np.flatnonzero(both_clustered)
        r = ref[idx]
        c = cand[idx]
        # Sizes of reference clusters / candidate clusters over the
        # co-clustered points only... no: |A| and |B| are full cluster
        # sizes (including points the other output called noise).
        ref_sizes: dict[int, int] = {}
        for lab, count in zip(*np.unique(ref[~ref_noise], return_counts=True)):
            ref_sizes[int(lab)] = int(count)
        cand_sizes: dict[int, int] = {}
        for lab, count in zip(*np.unique(cand[~cand_noise], return_counts=True)):
            cand_sizes[int(lab)] = int(count)
        # Intersection sizes per (ref, cand) label pair.
        pair_key = r.astype(np.int64) * (int(cand.max()) + 2) + c.astype(np.int64)
        uniq, inverse, counts = np.unique(
            pair_key, return_inverse=True, return_counts=True
        )
        inter = counts[inverse].astype(np.float64)
        a = np.array([ref_sizes[int(x)] for x in r], dtype=np.float64)
        b = np.array([cand_sizes[int(x)] for x in c], dtype=np.float64)
        union = a + b - inter
        scores[idx] = inter / union

    score = float(scores.mean())
    co = scores[both_clustered]
    return QualityReport(
        score=score,
        n_points=n,
        n_label_mismatch=int(np.count_nonzero(mismatch)),
        n_perfect=int(np.count_nonzero(scores >= 1.0 - 1e-12)),
        mean_overlap=float(co.mean()) if len(co) else 1.0,
    )
