"""Exception hierarchy for the Mr. Scan reproduction.

Every error raised by :mod:`repro` derives from :class:`MrScanError`, so
callers can catch one type at the pipeline boundary.  Subsystems raise the
narrower classes below; constructors accept plain messages and the classes
carry no state beyond them.
"""

from __future__ import annotations


class MrScanError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(MrScanError, ValueError):
    """Invalid configuration value (eps <= 0, bad topology, ...)."""


class PartitionError(MrScanError):
    """The partitioner could not produce a valid partition plan."""


class DeviceError(MrScanError):
    """Simulated GPU device misuse (out of memory, bad kernel launch)."""


class DeviceMemoryError(DeviceError):
    """Allocation exceeds the simulated device memory capacity."""


class TransportError(MrScanError):
    """MRNet transport failure (dead endpoint, undeliverable packet)."""


class TopologyError(MrScanError, ValueError):
    """Invalid MRNet tree topology specification."""


class MergeError(MrScanError):
    """Cluster merge invariant violation."""


class FormatError(MrScanError, ValueError):
    """Malformed point file or partition metadata."""


class SimulationError(MrScanError):
    """Performance-model simulation cannot proceed."""
