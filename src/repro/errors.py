"""Exception hierarchy for the Mr. Scan reproduction.

Every error raised by :mod:`repro` derives from :class:`MrScanError`, so
callers can catch one type at the pipeline boundary.  Subsystems raise the
narrower classes below; constructors accept plain messages and the classes
carry no state beyond them.

Hierarchy::

    MrScanError
    ├── ConfigError (also ValueError)
    ├── PartitionError
    ├── DeviceError
    │   └── DeviceMemoryError
    ├── TransportError
    │   ├── LeafTimeoutError
    │   ├── RetryExhaustedError
    │   ├── ArenaFullError
    │   └── FrameError
    ├── TopologyError (also ValueError)
    ├── MergeError
    ├── FormatError (also ValueError)
    │   └── DataValidationError
    ├── CheckpointError
    ├── DurabilityError
    │   └── JournalError
    ├── OperationCancelledError
    │   └── DeadlineExceededError
    ├── ValidationError
    ├── SimulationError
    └── TuneError

The resilience layer (:mod:`repro.resilience`) raises
:class:`LeafTimeoutError` when a node exceeds its per-attempt deadline,
:class:`RetryExhaustedError` when retry + failover budgets are spent, and
:class:`CheckpointError` when a persisted leaf checkpoint is missing or
fails its integrity check.  The first two subclass
:class:`TransportError` so pre-existing ``except TransportError`` sites
(and tests) treat them as the process failures they model.

The durability layer (:mod:`repro.durability`) raises
:class:`DurabilityError` for unusable run directories (config or dataset
fingerprint mismatch on ``--resume``) and :class:`JournalError` for a
corrupted write-ahead journal (hash-chain break, mid-stream garbage).
:class:`ArenaFullError` signals shared-memory exhaustion (``/dev/shm``
ENOSPC) while staging; the pipeline degrades to shipping the arrays
themselves instead of failing the run.  :class:`DataValidationError`
rejects NaN/Inf input rows; it subclasses :class:`FormatError` so
existing malformed-input handlers keep working.

:class:`PoisonTaskWarning` is not an error: the self-healing worker
pools emit it when a task that repeatedly killed its workers is
quarantined to in-process execution.
"""

from __future__ import annotations


class MrScanError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(MrScanError, ValueError):
    """Invalid configuration value (eps <= 0, bad topology, ...)."""


class PartitionError(MrScanError):
    """The partitioner could not produce a valid partition plan."""


class DeviceError(MrScanError):
    """Simulated GPU device misuse (out of memory, bad kernel launch)."""


class DeviceMemoryError(DeviceError):
    """Allocation exceeds the simulated device memory capacity."""


class TransportError(MrScanError):
    """MRNet transport failure (dead endpoint, undeliverable packet)."""


class LeafTimeoutError(TransportError):
    """A tree node's work exceeded its per-attempt deadline (straggler)."""


class RetryExhaustedError(TransportError):
    """A node kept failing after its full retry (and failover) budget."""


class ArenaFullError(TransportError):
    """The shared-memory arena cannot grow (``/dev/shm`` ENOSPC)."""


class FrameError(TransportError):
    """A TCP transport frame is malformed: torn mid-frame by a dropped
    connection, oversized beyond the protocol cap, or carrying a bad
    magic (a stray client speaking something else entirely)."""


class TopologyError(MrScanError, ValueError):
    """Invalid MRNet tree topology specification."""


class MergeError(MrScanError):
    """Cluster merge invariant violation."""


class FormatError(MrScanError, ValueError):
    """Malformed point file or partition metadata."""


class DataValidationError(FormatError):
    """Input points contain non-finite (NaN/Inf) coordinates or weights."""


class CheckpointError(MrScanError):
    """Leaf checkpoint is missing, unreadable, or fails its digest check."""


class DurabilityError(MrScanError):
    """A run directory cannot be used (fingerprint mismatch on resume)."""


class JournalError(DurabilityError):
    """The write-ahead run journal is corrupted (hash-chain break)."""


class OperationCancelledError(MrScanError):
    """Cooperatively cancelled work (:class:`repro.resilience.CancelToken`).

    Deliberately **not** a :class:`TransportError`: cancellation is a
    caller's decision, not a node failure, so the resilience engine must
    propagate it immediately instead of retrying or failing over.
    """


class DeadlineExceededError(OperationCancelledError):
    """An operation's deadline expired before its work completed."""


class PoisonTaskWarning(UserWarning):
    """A task that repeatedly killed pool workers was quarantined and run
    in-process in the driver instead."""


class ValidationError(MrScanError):
    """A runtime phase-boundary invariant check failed (repro.validate).

    Carries the structured :class:`repro.validate.Violation` records on
    ``violations`` so callers (and the fuzz harness) can report *which*
    paper invariant broke, not just that one did.
    """

    def __init__(self, message: str, violations: list | None = None) -> None:
        super().__init__(message)
        #: The :class:`repro.validate.Violation` records behind the failure.
        self.violations: list = list(violations or [])


class SimulationError(MrScanError):
    """Performance-model simulation cannot proceed."""


class TuneError(MrScanError):
    """The tune planner cannot produce or apply a plan (repro.tune)."""
