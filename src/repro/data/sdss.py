"""Synthetic sky-survey generator (SDSS experiment stand-in).

The paper's second dataset is BOSS γ-frame photometric object data from
SDSS Data Release 9, clustered with Eps=0.00015 and MinPts=5 (§4.2, §5.2) —
i.e. detections of the same astronomical object across overlapping frames
form micro-clusters a fraction of an arcminute across, on a sky that is
almost entirely empty at that scale.

The generator reproduces that regime: ``sources_per_sq_deg`` object
positions are drawn over a sky patch; each source spawns a small Poisson
number of detections scattered by a PSF/astrometry jitter comparable to
Eps; a sparse uniform background supplies spurious detections (cosmic rays,
artifacts) that DBSCAN must reject as noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..points import PointSet

__all__ = ["SDSSConfig", "generate_sdss"]


@dataclass(frozen=True)
class SDSSConfig:
    """Knobs for the synthetic SDSS generator.

    ``psf_sigma`` is chosen so that a source's detections fall within a few
    Eps=0.00015 of each other, and ``mean_detections`` exceeds MinPts=5 for
    most sources (some fall below and become noise — real catalogs have
    marginal detections too).
    """

    patch: tuple[float, float, float, float] = (150.0, 20.0, 152.0, 22.0)
    psf_sigma: float = 5e-5
    mean_detections: float = 9.0
    background_fraction: float = 0.04
    bright_source_fraction: float = 0.05
    bright_multiplier: float = 6.0

    def __post_init__(self) -> None:
        if self.psf_sigma <= 0:
            raise ValueError("psf_sigma must be positive")
        if self.mean_detections <= 0:
            raise ValueError("mean_detections must be positive")
        if not 0.0 <= self.background_fraction < 1.0:
            raise ValueError("background_fraction must be in [0, 1)")


def generate_sdss(
    n_points: int,
    *,
    config: SDSSConfig | None = None,
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """Generate ``n_points`` synthetic photometric detections.

    Coordinates are (RA, Dec) in degrees over ``config.patch``.  Weights
    model detection flux (log-normal), usable as the optional analysis
    weight the input format carries.
    """
    cfg = config or SDSSConfig()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if n_points <= 0:
        return PointSet.empty()

    n_bg = int(round(n_points * cfg.background_fraction))
    n_det = n_points - n_bg

    # Draw enough sources that Poisson detection counts sum past n_det,
    # then truncate.  Bright sources (stars) get multiplied detection
    # counts, creating the dense micro-clusters dense-box feeds on.
    n_sources = max(1, int(n_det / cfg.mean_detections * 1.3) + 8)
    xmin, ymin, xmax, ymax = cfg.patch
    src = np.column_stack(
        [rng.uniform(xmin, xmax, n_sources), rng.uniform(ymin, ymax, n_sources)]
    )
    lam = np.full(n_sources, cfg.mean_detections)
    bright = rng.random(n_sources) < cfg.bright_source_fraction
    lam[bright] *= cfg.bright_multiplier
    counts = rng.poisson(lam)
    counts[0] = max(counts[0], 1)  # at least one detection exists

    repeats = np.repeat(np.arange(n_sources), counts)
    if len(repeats) < n_det:
        # Extremely unlikely with the 1.3 safety factor; pad with extra
        # detections of random sources.
        extra = rng.integers(0, n_sources, n_det - len(repeats))
        repeats = np.concatenate([repeats, extra])
    repeats = repeats[:n_det]
    coords = src[repeats] + rng.normal(scale=cfg.psf_sigma, size=(n_det, 2))

    if n_bg:
        bg = np.column_stack(
            [rng.uniform(xmin, xmax, n_bg), rng.uniform(ymin, ymax, n_bg)]
        )
        coords = np.concatenate([coords, bg])

    flux = rng.lognormal(mean=0.0, sigma=1.0, size=len(coords))
    order = rng.permutation(len(coords))
    ps = PointSet.from_coords(coords[order], id_offset=id_offset)
    ps.weights[:] = flux[order]
    return ps
