"""Density-profile statistics over the Eps grid.

The performance model (``repro.perf``) needs scale-free facts about a
dataset's spatial density: how skewed the Eps×Eps cell histogram is, what
fraction of points sit in cells dense enough for the dense-box optimization
at a given MinPts, and how large the single densest cell is relative to an
even share.  These statistics are measured on an affordable sample and then
applied at paper scale, because they are properties of the underlying
distribution, not of the sample size (cell *counts* scale linearly with n;
cell *shares* do not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..points import PointSet

__all__ = ["DensityProfile", "profile_density"]


@dataclass(frozen=True)
class DensityProfile:
    """Scale-free summary of a dataset's Eps-grid density histogram.

    Attributes
    ----------
    eps:
        Cell edge length the histogram was computed with.
    n_points:
        Sample size the profile was measured from.
    n_occupied_cells:
        Number of non-empty Eps×Eps cells.
    max_cell_share:
        Fraction of all points in the single densest cell.  This bounds
        strong scaling: the slowest leaf ends up clustering one dense cell
        (§5.1.2), so no partitioning can beat ``max_cell_share * n``.
    top_cell_shares:
        Shares of the 32 densest cells (descending), padded with zeros.
    gini:
        Gini coefficient of the cell-count histogram (0 = uniform).
    mean_cell_count, p50_cell_count, p99_cell_count:
        Absolute per-cell counts at the sampled n (rescale linearly in n).
    """

    eps: float
    n_points: int
    n_occupied_cells: int
    max_cell_share: float
    top_cell_shares: tuple[float, ...]
    gini: float
    mean_cell_count: float
    p50_cell_count: float
    p99_cell_count: float

    def cell_count_at(self, n_points: int, share_rank: int = 0) -> float:
        """Expected count of the ``share_rank``-th densest cell at scale n."""
        if share_rank < len(self.top_cell_shares):
            return self.top_cell_shares[share_rank] * n_points
        return self.mean_cell_count * (n_points / self.n_points)

    def densebox_eliminated_fraction(self, minpts: int, *, subdiv: int = 8) -> float:
        """Estimate the fraction of points the dense-box pass removes.

        Dense box marks whole KD-tree subdivisions of edge <= Eps/(2*sqrt(2))
        holding >= MinPts points (§3.2.3).  An Eps cell contains about
        ``subdiv`` such subdivisions along each axis... we approximate: a
        cell with count c contributes when its per-subdivision expectation
        ``c / subdiv**2`` reaches MinPts.  The estimate interpolates the
        cell histogram: cells with c >= minpts * subdiv**2 are eliminated
        in full; cells between minpts and that threshold are partially
        eliminated proportionally to how far up the range they sit.
        """
        full = float(minpts) * subdiv * subdiv
        shares = np.asarray(self.top_cell_shares)
        counts = shares * self.n_points
        # Tail cells (beyond top 32) are approximated by the mean.
        frac = 0.0
        for c, s in zip(counts, shares):
            if c >= full:
                frac += s
            elif c >= minpts:
                frac += s * (c - minpts) / max(full - minpts, 1.0)
        # Mean-density bulk contribution.
        bulk_share = max(0.0, 1.0 - shares.sum())
        c = self.mean_cell_count
        if c >= full:
            frac += bulk_share
        elif c >= minpts:
            frac += bulk_share * (c - minpts) / max(full - minpts, 1.0)
        return float(min(frac, 1.0))


def profile_density(points: PointSet, eps: float, *, top_k: int = 32) -> DensityProfile:
    """Measure a :class:`DensityProfile` from a point sample."""
    if len(points) == 0:
        return DensityProfile(
            eps=eps,
            n_points=0,
            n_occupied_cells=0,
            max_cell_share=0.0,
            top_cell_shares=(0.0,) * top_k,
            gini=0.0,
            mean_cell_count=0.0,
            p50_cell_count=0.0,
            p99_cell_count=0.0,
        )
    cx = np.floor(points.xs / eps).astype(np.int64)
    cy = np.floor(points.ys / eps).astype(np.int64)
    # Collapse 2-D cell coordinates into one key for bincount-style counting.
    key = (cx - cx.min()).astype(np.int64) * (cy.max() - cy.min() + 1) + (cy - cy.min())
    _, counts = np.unique(key, return_counts=True)
    counts = np.sort(counts)[::-1].astype(np.float64)
    n = float(len(points))
    shares = counts[:top_k] / n
    if len(shares) < top_k:
        shares = np.pad(shares, (0, top_k - len(shares)))

    sorted_asc = counts[::-1]
    cum = np.cumsum(sorted_asc)
    gini = float(1.0 - 2.0 * np.sum(cum) / (len(counts) * cum[-1]) + 1.0 / len(counts)) if cum[-1] > 0 else 0.0

    return DensityProfile(
        eps=float(eps),
        n_points=int(n),
        n_occupied_cells=int(len(counts)),
        max_cell_share=float(counts[0] / n),
        top_cell_shares=tuple(float(s) for s in shares),
        gini=gini,
        mean_cell_count=float(counts.mean()),
        p50_cell_count=float(np.median(counts)),
        p99_cell_count=float(np.percentile(counts, 99)),
    )
