"""Generic synthetic point generators for tests and examples.

These produce the classic DBSCAN test shapes: Gaussian blobs (convex
clusters), rings and moons (the irregular, non-convex shapes DBSCAN is
famous for finding), and uniform background noise.  All generators take an
explicit ``rng`` or ``seed`` so every test and benchmark is reproducible.
"""

from __future__ import annotations

import numpy as np

from ..points import PointSet

__all__ = ["gaussian_blobs", "uniform_noise", "ring_cluster", "two_moons"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def gaussian_blobs(
    n_points: int,
    *,
    centers: np.ndarray | int = 4,
    spread: float = 0.5,
    box: tuple[float, float, float, float] = (0.0, 0.0, 10.0, 10.0),
    weights: np.ndarray | None = None,
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """Isotropic Gaussian blobs.

    Parameters
    ----------
    centers:
        Either an ``(k, 2)`` array of blob centres or an int ``k`` to draw
        centres uniformly inside ``box``.
    spread:
        Standard deviation of every blob.
    weights:
        ``(k,)`` relative blob sizes; defaults to equal.
    """
    rng = _rng(seed)
    if isinstance(centers, (int, np.integer)):
        xmin, ymin, xmax, ymax = box
        centers = np.column_stack(
            [rng.uniform(xmin, xmax, int(centers)), rng.uniform(ymin, ymax, int(centers))]
        )
    centers = np.asarray(centers, dtype=np.float64)
    k = centers.shape[0]
    if weights is None:
        weights = np.full(k, 1.0 / k)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()
    assignment = rng.choice(k, size=n_points, p=weights)
    coords = centers[assignment] + rng.normal(scale=spread, size=(n_points, 2))
    return PointSet.from_coords(coords, id_offset=id_offset)


def uniform_noise(
    n_points: int,
    *,
    box: tuple[float, float, float, float] = (0.0, 0.0, 10.0, 10.0),
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """Uniform background noise inside ``box``."""
    rng = _rng(seed)
    xmin, ymin, xmax, ymax = box
    coords = np.column_stack(
        [rng.uniform(xmin, xmax, n_points), rng.uniform(ymin, ymax, n_points)]
    )
    return PointSet.from_coords(coords, id_offset=id_offset)


def ring_cluster(
    n_points: int,
    *,
    center: tuple[float, float] = (0.0, 0.0),
    radius: float = 3.0,
    thickness: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """An annular (ring-shaped) cluster — a non-convex DBSCAN showcase."""
    rng = _rng(seed)
    theta = rng.uniform(0.0, 2.0 * np.pi, n_points)
    r = radius + rng.normal(scale=thickness, size=n_points)
    coords = np.column_stack(
        [center[0] + r * np.cos(theta), center[1] + r * np.sin(theta)]
    )
    return PointSet.from_coords(coords, id_offset=id_offset)


def two_moons(
    n_points: int,
    *,
    noise: float = 0.08,
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """The two interleaved half-moons dataset (unit scale)."""
    rng = _rng(seed)
    n_upper = n_points // 2
    n_lower = n_points - n_upper
    t_upper = rng.uniform(0.0, np.pi, n_upper)
    t_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.column_stack([np.cos(t_upper), np.sin(t_upper)])
    lower = np.column_stack([1.0 - np.cos(t_lower), 0.5 - np.sin(t_lower)])
    coords = np.concatenate([upper, lower]) + rng.normal(scale=noise, size=(n_points, 2))
    return PointSet.from_coords(coords, id_offset=id_offset)
