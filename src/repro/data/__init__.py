"""Dataset substrate: synthetic generators standing in for the paper's data.

The paper clusters (a) random datasets generated from the spatial
distribution of 8.5 M geolocated tweets and (b) SDSS DR9 BOSS photometric
object data.  Neither corpus is redistributable, so this package generates
synthetic equivalents with the same clustering-relevant character (see
DESIGN.md §1 for the substitution argument).
"""

from .synthetic import gaussian_blobs, uniform_noise, ring_cluster, two_moons
from .twitter import TwitterConfig, generate_twitter
from .sdss import SDSSConfig, generate_sdss
from .density import DensityProfile, profile_density

__all__ = [
    "gaussian_blobs",
    "uniform_noise",
    "ring_cluster",
    "two_moons",
    "TwitterConfig",
    "generate_twitter",
    "SDSSConfig",
    "generate_sdss",
    "DensityProfile",
    "profile_density",
]
