"""Synthetic geolocated-tweet generator (Twitter experiment stand-in).

The paper collected 8,519,781 geolocated tweets (Aug 11–21, 2012) and "used
the distribution of these tweets to generate random datasets of arbitrary
size" (§4.1), treating latitude/longitude as 2-D Cartesian coordinates with
Eps fixed at 0.1°.  We reproduce the *generator*, not the corpus: a mixture
model over population-weighted metropolitan areas with anisotropic urban
sprawl, secondary satellite towns, and a uniform rural background.

The resulting density field has the properties that drive Mr. Scan's
behaviour on the real data:

* a handful of Eps×Eps grid cells (large metro cores) holding an enormous
  share of all points — these become the single-cell partitions that bound
  strong-scaling (§5.1.2) and are exactly what the dense-box optimization
  targets;
* thousands of moderate-density cells (suburbs, highways);
* a vast, sparse background that DBSCAN must classify as noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..points import PointSet

__all__ = ["TwitterConfig", "METRO_AREAS", "generate_twitter"]

# (name, longitude, latitude, population-weight, sprawl-sigma-degrees)
# Weights are relative tweet volumes, not literal census population; big
# coastal metros dominate, matching the paper's Fig 2a where the Eastern US
# alone fills the last partition.
METRO_AREAS: tuple[tuple[str, float, float, float, float], ...] = (
    ("new-york", -74.006, 40.713, 100.0, 0.55),
    ("los-angeles", -118.244, 34.052, 75.0, 0.55),
    ("chicago", -87.630, 41.878, 45.0, 0.30),
    ("houston", -95.369, 29.760, 32.0, 0.30),
    ("phoenix", -112.074, 33.448, 20.0, 0.25),
    ("philadelphia", -75.165, 39.953, 28.0, 0.22),
    ("san-antonio", -98.494, 29.424, 12.0, 0.18),
    ("san-diego", -117.161, 32.716, 16.0, 0.18),
    ("dallas", -96.797, 32.777, 30.0, 0.32),
    ("miami", -80.192, 25.762, 34.0, 0.25),
    ("atlanta", -84.388, 33.749, 26.0, 0.28),
    ("boston", -71.059, 42.360, 24.0, 0.20),
    ("san-francisco", -122.419, 37.775, 28.0, 0.22),
    ("seattle", -122.332, 47.606, 18.0, 0.20),
    ("detroit", -83.046, 42.331, 15.0, 0.22),
    ("minneapolis", -93.265, 44.978, 12.0, 0.18),
    ("denver", -104.990, 39.739, 13.0, 0.18),
    ("washington", -77.037, 38.907, 30.0, 0.24),
    ("baltimore", -76.612, 39.290, 11.0, 0.15),
    ("st-louis", -90.199, 38.627, 9.0, 0.16),
    ("tampa", -82.457, 27.951, 12.0, 0.18),
    ("pittsburgh", -79.996, 40.441, 8.0, 0.14),
    ("cincinnati", -84.512, 39.103, 7.0, 0.13),
    ("cleveland", -81.694, 41.499, 8.0, 0.14),
    ("kansas-city", -94.579, 39.100, 7.0, 0.14),
    ("las-vegas", -115.139, 36.170, 11.0, 0.14),
    ("orlando", -81.379, 28.538, 10.0, 0.15),
    ("san-jose", -121.886, 37.338, 9.0, 0.12),
    ("austin", -97.743, 30.267, 11.0, 0.14),
    ("columbus", -82.999, 39.961, 7.0, 0.13),
    ("charlotte", -80.843, 35.227, 8.0, 0.14),
    ("indianapolis", -86.158, 39.768, 7.0, 0.13),
    ("nashville", -86.781, 36.163, 7.0, 0.13),
    ("memphis", -90.049, 35.150, 5.0, 0.11),
    ("portland", -122.676, 45.523, 9.0, 0.14),
    ("oklahoma-city", -97.516, 35.468, 4.0, 0.11),
    ("louisville", -85.758, 38.253, 4.0, 0.10),
    ("milwaukee", -87.907, 43.039, 5.0, 0.11),
    ("albuquerque", -106.651, 35.084, 3.0, 0.09),
    ("tucson", -110.975, 32.222, 3.0, 0.09),
    ("fresno", -119.787, 36.738, 3.0, 0.09),
    ("sacramento", -121.494, 38.582, 6.0, 0.12),
    ("new-orleans", -90.071, 29.951, 5.0, 0.10),
    ("buffalo", -78.878, 42.887, 3.0, 0.09),
    ("salt-lake-city", -111.891, 40.761, 4.0, 0.10),
    ("richmond", -77.436, 37.541, 3.0, 0.09),
    ("birmingham", -86.802, 33.521, 3.0, 0.09),
    ("raleigh", -78.638, 35.772, 4.0, 0.10),
    ("jacksonville", -81.656, 30.332, 4.0, 0.10),
    ("omaha", -95.935, 41.257, 2.5, 0.08),
    ("el-paso", -106.485, 31.759, 2.5, 0.08),
    ("boise", -116.202, 43.615, 1.5, 0.07),
    ("des-moines", -93.609, 41.587, 1.5, 0.07),
    ("spokane", -117.426, 47.659, 1.2, 0.06),
    ("billings", -108.500, 45.783, 0.6, 0.05),
    ("fargo", -96.790, 46.877, 0.6, 0.05),
    ("anchorage", -149.900, 61.218, 0.8, 0.06),
    ("honolulu", -157.858, 21.307, 1.5, 0.05),
)

#: Continental-US-ish bounding box used for the rural background.
CONUS_BOX: tuple[float, float, float, float] = (-125.0, 24.0, -66.0, 50.0)


@dataclass(frozen=True)
class TwitterConfig:
    """Knobs for the synthetic tweet generator.

    ``urban_core_fraction`` of each metro's points are re-drawn close to
    the centre (sigma = ``core_sigma``), producing the super-dense Eps×Eps
    cells the paper's strong-scaling section blames for the slowest leaf.
    The defaults put roughly 0.1 % of all points in the densest 0.1° cell
    — the concentration the paper's strong-scaling knee implies (the
    slowest 2048-leaf partition is one dense cell holding a few times the
    800 K-point even share).  ``noise_fraction`` of all points are uniform
    background over :data:`CONUS_BOX`.
    """

    noise_fraction: float = 0.06
    urban_core_fraction: float = 0.06
    core_sigma: float = 0.15
    satellite_towns_per_metro: int = 3
    satellite_fraction: float = 0.12
    satellite_sigma: float = 0.10
    satellite_offset: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise_fraction < 1.0:
            raise ValueError("noise_fraction must be in [0, 1)")
        if not 0.0 <= self.urban_core_fraction <= 1.0:
            raise ValueError("urban_core_fraction must be in [0, 1]")
        if not 0.0 <= self.satellite_fraction <= 1.0:
            raise ValueError("satellite_fraction must be in [0, 1]")


def generate_twitter(
    n_points: int,
    *,
    config: TwitterConfig | None = None,
    seed: int | np.random.Generator | None = 0,
    id_offset: int = 0,
) -> PointSet:
    """Generate ``n_points`` synthetic geolocated tweets.

    Coordinates are (longitude, latitude) treated as plain 2-D Cartesian
    values, exactly as the paper does (§4.1).  Weights are all 1.0.
    """
    cfg = config or TwitterConfig()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if n_points <= 0:
        return PointSet.empty()

    n_noise = int(round(n_points * cfg.noise_fraction))
    n_urban = n_points - n_noise

    names, lons, lats, weights, sigmas = zip(*METRO_AREAS)
    lons = np.asarray(lons)
    lats = np.asarray(lats)
    sigmas = np.asarray(sigmas)
    probs = np.asarray(weights, dtype=np.float64)
    probs /= probs.sum()

    metro = rng.choice(len(METRO_AREAS), size=n_urban, p=probs)
    base = np.column_stack([lons[metro], lats[metro]])
    sigma = sigmas[metro][:, None]

    # Anisotropic sprawl: cities stretch ~1.4x wider east-west than
    # north-south (coastlines and highway corridors).
    sprawl = rng.normal(size=(n_urban, 2)) * sigma * np.array([1.4, 1.0])
    coords = base + sprawl

    # Super-dense urban cores.
    n_core = int(round(n_urban * cfg.urban_core_fraction))
    if n_core:
        core_idx = rng.choice(n_urban, size=n_core, replace=False)
        coords[core_idx] = base[core_idx] + rng.normal(
            scale=cfg.core_sigma, size=(n_core, 2)
        )

    # Satellite towns: offset mini-blobs around each metro.
    n_sat = int(round(n_urban * cfg.satellite_fraction))
    if n_sat and cfg.satellite_towns_per_metro > 0:
        sat_idx = rng.choice(n_urban, size=n_sat, replace=False)
        town = rng.integers(0, cfg.satellite_towns_per_metro, size=n_sat)
        angle = 2.0 * np.pi * (town + 1) / (cfg.satellite_towns_per_metro + 1)
        offsets = cfg.satellite_offset * np.column_stack([np.cos(angle), np.sin(angle)])
        coords[sat_idx] = (
            base[sat_idx]
            + offsets * sigma[sat_idx]
            / sigmas.mean()
            + rng.normal(scale=cfg.satellite_sigma, size=(n_sat, 2))
        )

    if n_noise:
        xmin, ymin, xmax, ymax = CONUS_BOX
        noise = np.column_stack(
            [rng.uniform(xmin, xmax, n_noise), rng.uniform(ymin, ymax, n_noise)]
        )
        coords = np.concatenate([coords, noise])

    # Shuffle so file order carries no spatial information (the paper's
    # partitioner leaves each hold "a random portion of data").
    order = rng.permutation(len(coords))
    return PointSet.from_coords(coords[order], id_offset=id_offset)
