"""Point-file formats.

The paper's input is "a single binary or text file" where "each input point
has a unique ID number, coordinates, and an optional weight" (§3).  We define
one binary record layout and one whitespace-delimited text layout:

Binary record (little-endian, 32 bytes)::

    int64   id
    float64 x
    float64 y
    float64 weight

Text line::

    <id> <x> <y> [weight]

Binary files carry an 16-byte header (magic + point count) so partial reads
can be validated.  All readers return :class:`repro.points.PointSet`.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from ..errors import DataValidationError, FormatError
from ..points import PointSet

__all__ = [
    "POINT_RECORD_BYTES",
    "MAGIC",
    "point_dtype",
    "write_points_binary",
    "read_points_binary",
    "write_points_text",
    "read_points_text",
]

#: Bytes per binary point record (id + x + y + weight).
POINT_RECORD_BYTES = 32

#: File magic for binary point files ("MRSCANPT").
MAGIC = b"MRSCANPT"

#: Structured dtype of one binary record.
point_dtype = np.dtype(
    [("id", "<i8"), ("x", "<f8"), ("y", "<f8"), ("weight", "<f8")]
)


def _to_records(points: PointSet) -> np.ndarray:
    rec = np.empty(len(points), dtype=point_dtype)
    rec["id"] = points.ids
    rec["x"] = points.coords[:, 0]
    rec["y"] = points.coords[:, 1]
    rec["weight"] = points.weights
    return rec


def _checked(points: PointSet, path: str | Path, validate: bool) -> PointSet:
    """Reject non-finite rows loaded from ``path`` unless told not to."""
    if validate:
        try:
            points.validate_finite()
        except DataValidationError as exc:
            raise DataValidationError(f"{path}: {exc}") from exc
    return points


def _from_records(rec: np.ndarray) -> PointSet:
    coords = np.empty((len(rec), 2), dtype=np.float64)
    coords[:, 0] = rec["x"]
    coords[:, 1] = rec["y"]
    return PointSet(ids=rec["id"].astype(np.int64), coords=coords, weights=rec["weight"].astype(np.float64))


def write_points_binary(path: str | Path, points: PointSet) -> int:
    """Write a binary point file; returns the number of bytes written."""
    rec = _to_records(points)
    header = MAGIC + np.int64(len(points)).tobytes()
    with open(path, "wb") as fh:
        fh.write(header)
        rec.tofile(fh)
    return len(header) + rec.nbytes


def read_points_binary(
    path: str | Path,
    *,
    offset: int | None = None,
    count: int | None = None,
    validate: bool = True,
) -> PointSet:
    """Read a binary point file, optionally a slice of ``count`` records.

    ``offset`` is a record index (not a byte offset) into the file body,
    mirroring how the partitioner's metadata file addresses partitions.
    With ``validate`` (the default) rows holding NaN/Inf coordinates or
    weights raise :class:`DataValidationError`; pass ``validate=False``
    to load them anyway (e.g. to strip them with
    :meth:`PointSet.drop_invalid`).
    """
    path = Path(path)
    size = path.stat().st_size
    header_len = len(MAGIC) + 8
    if size < header_len:
        raise FormatError(f"{path}: truncated point file ({size} bytes)")
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise FormatError(f"{path}: bad magic {magic!r}")
        (n_total,) = np.frombuffer(fh.read(8), dtype="<i8")
        n_total = int(n_total)
        body_bytes = size - header_len
        if body_bytes != n_total * POINT_RECORD_BYTES:
            raise FormatError(
                f"{path}: header says {n_total} points but body holds "
                f"{body_bytes // POINT_RECORD_BYTES}"
            )
        start = 0 if offset is None else int(offset)
        n_read = n_total - start if count is None else int(count)
        if start < 0 or n_read < 0 or start + n_read > n_total:
            raise FormatError(
                f"{path}: slice [{start}, {start + n_read}) out of range "
                f"for {n_total} points"
            )
        fh.seek(header_len + start * POINT_RECORD_BYTES, os.SEEK_SET)
        rec = np.fromfile(fh, dtype=point_dtype, count=n_read)
    return _checked(_from_records(rec), path, validate)


def write_points_text(path: str | Path, points: PointSet) -> int:
    """Write a text point file (one ``id x y weight`` line per point)."""
    buf = io.StringIO()
    for pid, (x, y), w in zip(points.ids, points.coords, points.weights):
        buf.write(f"{int(pid)} {float(x)!r} {float(y)!r} {float(w)!r}\n")
    data = buf.getvalue().encode()
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def read_points_text(path: str | Path, *, validate: bool = True) -> PointSet:
    """Read a text point file; the weight column is optional per line.

    Like :func:`read_points_binary`, non-finite rows raise
    :class:`DataValidationError` unless ``validate=False``.
    """
    ids: list[int] = []
    xs: list[float] = []
    ys: list[float] = []
    ws: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise FormatError(f"{path}:{lineno}: expected 3 or 4 columns, got {len(parts)}")
            try:
                ids.append(int(parts[0]))
                xs.append(float(parts[1]))
                ys.append(float(parts[2]))
                ws.append(float(parts[3]) if len(parts) == 4 else 1.0)
            except ValueError as exc:
                raise FormatError(f"{path}:{lineno}: {exc}") from exc
    coords = np.column_stack([np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)]) if ids else np.empty((0, 2))
    points = PointSet(
        ids=np.asarray(ids, dtype=np.int64),
        coords=coords,
        weights=np.asarray(ws, dtype=np.float64),
    )
    return _checked(points, path, validate)
