"""Striped parallel file system (Lustre) performance model.

Why this exists
---------------
The paper's weak-scaling defect is an I/O effect: the partition phase is
~68 % of Mr. Scan's total time, and at MinPts=400 the parallel *write* of
partitions takes 65.2 % of the partition phase (the read takes 29.92 %)
because each partitioner leaf holds a random slice of the input and must
contribute many *small random writes* at specific offsets of the shared
output file (§5.1.1).  The paper also cites Crosby (CUG'09) for Lustre
parallel-write bandwidth degrading beyond ~2000 client processes (§3.1.3).

We therefore model a striped file system with:

* ``n_osts`` object storage targets, each with ``ost_bandwidth`` bytes/s;
* per-operation latency (RPC + seek) that penalises small random writes;
* a client-contention efficiency curve that rises to a plateau and then
  degrades past ``client_knee`` concurrent clients;
* sequential-access bonus: requests above ``stripe_size`` approach the raw
  streaming bandwidth.

The model is an *accounting ledger*: code under test records read/write
operations per client, and :meth:`LustreModel.phase_time` converts a ledger
into modelled seconds (the slowest client dictates, as in a barrier-style
parallel write).  Nothing here touches the real disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

__all__ = ["LustreConfig", "IOOp", "IOTrace", "LustreModel"]


@dataclass(frozen=True)
class LustreConfig:
    """Constants describing the modelled file system.

    Defaults are loosely calibrated to the Titan-era Spider/Atlas Lustre
    deployment: aggregate bandwidth of a few hundred GB/s across ~1000
    OSTs, ~1 MiB stripes, millisecond-scale RPC latency.
    """

    n_osts: int = 1008
    ost_bandwidth: float = 400e6  # bytes/s sustained per OST
    stripe_size: int = 1 << 20  # bytes
    op_latency: float = 0.002  # seconds per I/O RPC (seek + queue)
    small_io_threshold: int = 1 << 20  # bytes; below this, random I/O pays
    small_write_penalty: float = 8.0  # bandwidth divisor for small random writes
    small_read_penalty: float = 2.0  # reads are less seek-bound than writes
    client_knee: int = 2000  # clients beyond which efficiency degrades
    client_degradation: float = 0.35  # strength of past-knee degradation

    def __post_init__(self) -> None:
        if self.n_osts <= 0:
            raise SimulationError("n_osts must be positive")
        if self.ost_bandwidth <= 0:
            raise SimulationError("ost_bandwidth must be positive")

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak streaming bandwidth with ideal striping (bytes/s)."""
        return self.n_osts * self.ost_bandwidth

    def client_efficiency(self, n_clients: int) -> float:
        """Fraction of aggregate bandwidth reachable by ``n_clients``.

        Rises roughly linearly while clients are scarce (each client can
        drive only a handful of OST streams), plateaus near 1.0 around the
        knee, then decays as lock/RPC contention grows — the Crosby CUG'09
        behaviour the paper cites.
        """
        if n_clients <= 0:
            raise SimulationError("n_clients must be positive")
        # Each client saturates ~4 OST streams.
        ramp = min(1.0, (4.0 * n_clients) / self.n_osts)
        if n_clients <= self.client_knee:
            return ramp
        over = np.log2(n_clients / self.client_knee)
        return ramp / (1.0 + self.client_degradation * over)


@dataclass(frozen=True)
class IOOp:
    """One recorded I/O operation."""

    client: int
    kind: str  # "read" | "write"
    nbytes: int
    sequential: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise SimulationError(f"bad IOOp kind {self.kind!r}")
        if self.nbytes < 0:
            raise SimulationError("nbytes must be >= 0")


@dataclass
class IOTrace:
    """A ledger of I/O operations recorded during one phase."""

    ops: list[IOOp] = field(default_factory=list)

    def record(self, client: int, kind: str, nbytes: int, *, sequential: bool = True) -> None:
        """Append one operation to the ledger."""
        self.ops.append(IOOp(client=int(client), kind=kind, nbytes=int(nbytes), sequential=sequential))

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def total_bytes(self, kind: str | None = None) -> int:
        """Total bytes moved, optionally filtered to one kind."""
        return sum(op.nbytes for op in self.ops if kind is None or op.kind == kind)

    def clients(self) -> list[int]:
        """Sorted list of distinct client IDs appearing in the trace."""
        return sorted({op.client for op in self.ops})

    def merged(self, other: "IOTrace") -> "IOTrace":
        """A new trace containing the operations of both."""
        return IOTrace(ops=self.ops + other.ops)


class LustreModel:
    """Convert an :class:`IOTrace` into modelled wall-clock seconds.

    The model charges each operation::

        time(op) = op_latency + nbytes / effective_bandwidth(op)

    where the effective bandwidth divides the contention-adjusted aggregate
    bandwidth evenly across active clients and applies the small-random-I/O
    penalty when the request is below the stripe-size threshold and not
    sequential.  A phase completes when its slowest client finishes
    (parallel writes at distinct offsets of a shared file are independent,
    but the phase barrier waits for all of them).
    """

    def __init__(self, config: LustreConfig | None = None) -> None:
        self.config = config or LustreConfig()

    # ------------------------------------------------------------------ #

    def op_time(self, op: IOOp, n_clients: int) -> float:
        """Modelled seconds for one operation with ``n_clients`` active."""
        cfg = self.config
        share = cfg.aggregate_bandwidth * cfg.client_efficiency(n_clients) / n_clients
        if op.nbytes < cfg.small_io_threshold and not op.sequential:
            penalty = cfg.small_write_penalty if op.kind == "write" else cfg.small_read_penalty
            share /= penalty
        return cfg.op_latency + (op.nbytes / share if op.nbytes else 0.0)

    def client_times(self, trace: IOTrace) -> dict[int, float]:
        """Per-client total time for a trace (all clients active throughout)."""
        clients = trace.clients()
        if not clients:
            return {}
        n = len(clients)
        totals: dict[int, float] = {c: 0.0 for c in clients}
        for op in trace.ops:
            totals[op.client] += self.op_time(op, n)
        return totals

    def phase_time(self, trace: IOTrace) -> float:
        """Modelled seconds for a phase: the slowest client dictates."""
        totals = self.client_times(trace)
        return max(totals.values(), default=0.0)

    def breakdown(self, trace: IOTrace) -> dict[str, float]:
        """Phase time split by operation kind (read vs write).

        Used to check the paper's observation that, at MinPts=400, writes
        take 65.2 % of the partition phase and reads 29.92 %.
        """
        clients = trace.clients()
        if not clients:
            return {"read": 0.0, "write": 0.0}
        n = len(clients)
        out = {"read": 0.0, "write": 0.0}
        for kind in ("read", "write"):
            per_client: dict[int, float] = {c: 0.0 for c in clients}
            for op in trace.ops:
                if op.kind == kind:
                    per_client[op.client] += self.op_time(op, n)
            out[kind] = max(per_client.values(), default=0.0)
        return out
