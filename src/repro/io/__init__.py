"""Storage substrate: point-file formats, partition files, and a Lustre model.

Mr. Scan starts from a single input file on a parallel file system and the
partitioner writes one region of a shared output file per partition (§3.1.3).
This package provides the file formats plus :class:`repro.io.lustre.LustreModel`,
the striped-parallel-FS performance model used to reproduce the paper's
I/O-dominated partition-phase behaviour.
"""

from .formats import (
    POINT_RECORD_BYTES,
    read_points_binary,
    read_points_text,
    write_points_binary,
    write_points_text,
)
from .lustre import LustreModel, LustreConfig, IOTrace
from .partition_files import PartitionFileSet, PartitionMeta

__all__ = [
    "POINT_RECORD_BYTES",
    "read_points_binary",
    "read_points_text",
    "write_points_binary",
    "write_points_text",
    "LustreModel",
    "LustreConfig",
    "IOTrace",
    "PartitionFileSet",
    "PartitionMeta",
]
