"""Partition output file and metadata table (§3.1.3).

The distributed partitioner writes "the complete point information to the
correct position in a single output file in parallel, where the output file
contains the points of each partition in sequential order", and the root
generates "a metadata file to specify the offset from which each partition
starts in the output file".

:class:`PartitionFileSet` implements exactly that: a single shared binary
file in the :mod:`repro.io.formats` record layout, an offset table, and
record-level slicing so each Mr. Scan leaf can read only its partition.
A partition's slice is further split into *partition points* followed by
*shadow points* so the clustering phase knows which points it owns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..points import PointSet
from .formats import MAGIC, POINT_RECORD_BYTES, point_dtype, read_points_binary

__all__ = ["PartitionMeta", "PartitionFileSet"]


@dataclass(frozen=True)
class PartitionMeta:
    """Offset-table entry for one partition.

    ``offset`` and counts are in *records*, not bytes, mirroring how the
    metadata file addresses the shared output file.
    """

    partition_id: int
    offset: int
    n_partition_points: int
    n_shadow_points: int

    @property
    def n_points(self) -> int:
        return self.n_partition_points + self.n_shadow_points


class PartitionFileSet:
    """A single shared partition file plus its metadata table.

    Parameters
    ----------
    data_path:
        Path of the shared binary point file.
    meta_path:
        Path of the JSON metadata file (offset table).
    """

    def __init__(self, data_path: str | Path, meta_path: str | Path | None = None) -> None:
        self.data_path = Path(data_path)
        self.meta_path = Path(meta_path) if meta_path else self.data_path.with_suffix(".meta.json")
        self._metas: list[PartitionMeta] = []

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def write(self, partitions: list[tuple[PointSet, PointSet]]) -> list[PartitionMeta]:
        """Write all partitions sequentially and persist the offset table.

        Each element of ``partitions`` is a ``(partition_points,
        shadow_points)`` pair.  Returns the metadata entries in partition
        order.  (The distributed partitioner instead uses
        :meth:`layout` + :meth:`write_slice` to emulate parallel writes at
        offsets; this method is the simple single-writer path.)
        """
        metas = self.layout([(len(p), len(s)) for p, s in partitions])
        total = sum(m.n_points for m in metas)
        with open(self.data_path, "wb") as fh:
            fh.write(MAGIC + np.int64(total).tobytes())
        for meta, (part, shadow) in zip(metas, partitions):
            self.write_slice(meta.offset, part.concat(shadow))
        self.save_meta()
        return metas

    def layout(self, sizes: list[tuple[int, int]]) -> list[PartitionMeta]:
        """Compute the offset table for ``(n_partition, n_shadow)`` sizes."""
        metas: list[PartitionMeta] = []
        offset = 0
        for pid, (n_part, n_shadow) in enumerate(sizes):
            metas.append(
                PartitionMeta(
                    partition_id=pid,
                    offset=offset,
                    n_partition_points=int(n_part),
                    n_shadow_points=int(n_shadow),
                )
            )
            offset += n_part + n_shadow
        self._metas = metas
        return metas

    def create(self, total_records: int) -> None:
        """Pre-create the shared file sized for ``total_records`` records."""
        with open(self.data_path, "wb") as fh:
            fh.write(MAGIC + np.int64(total_records).tobytes())
            fh.truncate(len(MAGIC) + 8 + total_records * POINT_RECORD_BYTES)

    def write_slice(self, offset: int, points: PointSet) -> int:
        """Write ``points`` at record ``offset`` (parallel-writer path).

        Returns bytes written.  The shared file must already exist (via
        :meth:`create` or a prior :meth:`write`).
        """
        rec = np.empty(len(points), dtype=point_dtype)
        rec["id"] = points.ids
        rec["x"] = points.coords[:, 0]
        rec["y"] = points.coords[:, 1]
        rec["weight"] = points.weights
        with open(self.data_path, "r+b") as fh:
            fh.seek(len(MAGIC) + 8 + offset * POINT_RECORD_BYTES)
            rec.tofile(fh)
        return rec.nbytes

    def save_meta(self) -> None:
        """Persist the offset table as JSON."""
        payload = {"partitions": [asdict(m) for m in self._metas]}
        self.meta_path.write_text(json.dumps(payload, indent=1))

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def load_meta(self) -> list[PartitionMeta]:
        """Load the offset table from the metadata file."""
        if not self.meta_path.exists():
            raise FormatError(f"missing partition metadata {self.meta_path}")
        payload = json.loads(self.meta_path.read_text())
        self._metas = [PartitionMeta(**entry) for entry in payload["partitions"]]
        return self._metas

    @property
    def metas(self) -> list[PartitionMeta]:
        if not self._metas:
            self.load_meta()
        return self._metas

    def __len__(self) -> int:
        return len(self.metas)

    def read_partition(self, partition_id: int) -> tuple[PointSet, PointSet]:
        """Read one partition's ``(partition_points, shadow_points)``."""
        metas = self.metas
        if not 0 <= partition_id < len(metas):
            raise FormatError(f"partition {partition_id} out of range (have {len(metas)})")
        meta = metas[partition_id]
        both = read_points_binary(self.data_path, offset=meta.offset, count=meta.n_points)
        part = both.take(np.arange(meta.n_partition_points))
        shadow = both.take(np.arange(meta.n_partition_points, meta.n_points))
        return part, shadow
