"""Resident clustering state and the incremental ingest transaction.

:class:`ServeState` is the daemon's single source of truth: the resident
point set (internal ids ``0..n-1``, external ids mapped alongside), the
partition plan and histogram, every leaf's cached output, and the
current global labels.  It is transport-agnostic and synchronous — the
asyncio server serializes ingests onto it from an executor thread and
answers queries from committed snapshots.

One ingest is a **transaction** over a candidate copy of the spatial
state:

1. sanitize the batch, assign internal ids, compute its touched cells;
2. adopt cells that were empty at plan time
   (:func:`repro.partition.adopt_cells` on a *copied* plan);
3. fold the batch into a copied histogram and refresh the shadow sets of
   every affected partition;
4. map touched cells to dirty partitions
   (:func:`repro.partition.dirty_partitions`);
5. re-materialize partitions on the union
   (:func:`~repro.partition.partitioner.partition_points` is
   order-stable, so clean partitions come back byte-identical and their
   cached labels stay aligned);
6. invalidate the dirty leaves' spill checkpoints and run
   :func:`repro.core.pipeline.cluster_merge_sweep` with the clean
   leaves' cached outputs;
7. commit — swap every reference under the snapshot lock, journal
   ``ingest_done``, bump ``serve.*`` metrics.

A failure anywhere before step 7 leaves the committed state untouched
(the next ingest simply starts from it again), which is what makes a
worker ``kill`` fault or an OOM mid-re-cluster safe: the self-healing
pool retries inside step 6, and if the run ultimately fails the ingest
is rejected without poisoning the resident state.
"""

from __future__ import annotations

import copy
import logging
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.config import MrScanConfig
from ..core.pipeline import cluster_merge_sweep
from ..durability.ingestlog import IngestLog, batch_digest
from ..durability.rundir import config_fingerprint, dataset_fingerprint
from ..errors import ConfigError, FormatError
from ..partition.dirty import adopt_cells, dirty_partitions, touched_cells_of
from ..partition.grid import GridHistogram, cell_of_coords
from ..partition.partitioner import form_partitions, partition_points
from ..partition.shadow import refresh_shadow
from ..points import PointSet
from ..resilience.checkpoint import LeafCheckpointStore
from ..telemetry import Telemetry

__all__ = ["IngestOutcome", "ServeState"]

logger = logging.getLogger("repro.serve")

#: Test/chaos hook: seconds to sleep inside an ingest *after* the batch
#: blob is durable but *before* the transaction commits and acks — the
#: deterministic window the crash harness SIGKILLs the daemon in.
INGEST_DELAY_ENV = "MRSCAN_SERVE_INGEST_DELAY"


@dataclass
class IngestOutcome:
    """What one committed ingest did (the wire-level ack payload)."""

    seq: int
    n_points: int
    n_dropped: int
    n_touched_cells: int
    dirty_leaves: tuple[int, ...]
    dirty_ratio: float
    n_reclustered: int
    n_clusters: int
    seconds: float

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "n_points": self.n_points,
            "n_dropped": self.n_dropped,
            "n_touched_cells": self.n_touched_cells,
            "dirty_leaves": list(self.dirty_leaves),
            "dirty_ratio": self.dirty_ratio,
            "n_reclustered": self.n_reclustered,
            "n_clusters": self.n_clusters,
            "seconds": self.seconds,
        }


@dataclass
class _Snapshot:
    """The committed, queryable view (swapped atomically on commit)."""

    labels: np.ndarray
    core_mask: np.ndarray
    external_ids: np.ndarray
    n_clusters: int


class ServeState:
    """Resident state of one serving session.

    Parameters
    ----------
    base:
        The initial dataset (external ids preserved).  Must be non-empty
        — the partition plan is formed from its histogram and keeps its
        leaf count for the session's lifetime.
    config:
        Pipeline parameters.  ``config.n_leaves`` fixes the leaf count.
    transport:
        A caller-owned transport lent to every partial run (wrap a
        resident :class:`~repro.runtime.ShmTransport` with
        :func:`~repro.runtime.borrow_transport`); never closed here.
    ingest_log:
        Optional :class:`~repro.durability.IngestLog` for WAL durability.
    """

    def __init__(
        self,
        base: PointSet,
        config: MrScanConfig,
        *,
        transport,
        telemetry: Telemetry | None = None,
        ingest_log: IngestLog | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
    ) -> None:
        if len(base) == 0:
            raise ConfigError("serve needs a non-empty base dataset")
        self.config = config
        self.transport = transport
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.metrics = self.telemetry.metrics
        self.ingest_log = ingest_log
        self.checkpoint_dir = checkpoint_dir
        self._snapshot_lock = threading.Lock()
        self._ingest_lock = threading.Lock()
        self.n_ingests = 0
        self.started_at = time.time()
        #: Wall seconds of the last committed ingest — the server's
        #: ``retry_after_s`` estimate keys on it.
        self.last_ingest_seconds = 0.0

        base, n_dropped = base.drop_invalid()
        if len(base) == 0:
            raise ConfigError("base dataset has no finite points")
        if n_dropped:
            logger.info("serve: dropped %d non-finite base row(s)", n_dropped)
        base.validate_unique_ids()

        if self.ingest_log is not None:
            fresh = self.ingest_log.open_serve(
                config=config_fingerprint(config),
                base=dataset_fingerprint(base),
                n_base=len(base),
            )
            if not fresh and not resume:
                raise ConfigError(
                    "ingest log already holds a serving session; pass "
                    "--resume to replay it or use a fresh --run-dir"
                )

        if self.checkpoint_dir is not None:
            # Leaf spill checkpoints are an intra-session retry/failover
            # cache, not cross-session state: a previous daemon's final
            # leaves do not match the base-only partitions bootstrap is
            # about to cluster, so stale hits here would corrupt them.
            LeafCheckpointStore(self.checkpoint_dir).clear()

        self._bootstrap(base)

        if self.ingest_log is not None and resume:
            acked = self.ingest_log.acked()
            for batch in acked:
                self._apply_ingest(batch.coords, batch.ids, journal=False)
                self.n_ingests += 1
            if acked:
                logger.info(
                    "serve: resumed %d acked ingest(s) from %s",
                    len(acked),
                    self.ingest_log.root,
                )

    # ------------------------------------------------------------------ #
    # Bootstrap
    # ------------------------------------------------------------------ #

    def _bootstrap(self, base: PointSet) -> None:
        """Full (non-incremental) load of the base dataset."""
        cfg = self.config
        external_ids = base.ids.copy()
        points = PointSet(
            ids=np.arange(len(base), dtype=np.int64),
            coords=base.coords,
            weights=base.weights,
        )
        histogram = GridHistogram.from_points(points, cfg.eps)
        plan = form_partitions(
            histogram, cfg.n_leaves, cfg.minpts, rebalance=cfg.rebalance_partitions
        )
        partitions = partition_points(points, plan)
        result = cluster_merge_sweep(
            partitions=partitions,
            plan=plan,
            n_points=len(points),
            config=cfg,
            transport=self.transport,
            dirty=None,  # everything: the initial full cluster
            telemetry=self.telemetry,
            checkpoint_dir=self.checkpoint_dir,
        )
        self.points = points
        self.external_ids = external_ids
        self._ext_to_int = {int(e): i for i, e in enumerate(external_ids)}
        self.histogram = histogram
        self.plan = plan
        self.partitions = partitions
        self.outputs = result.outputs
        self.snapshot = _Snapshot(
            labels=result.labels,
            core_mask=result.core_mask,
            external_ids=external_ids,
            n_clusters=result.n_clusters,
        )
        self.last_dirty_ratio = 1.0
        if self.metrics.enabled:
            self.metrics.gauge("serve.points").set(len(points))
            self.metrics.gauge("serve.clusters").set(result.n_clusters)
        logger.info(
            "serve: bootstrapped %d points into %d leaves (%d clusters)",
            len(points),
            cfg.n_leaves,
            result.n_clusters,
        )

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def ingest(
        self,
        coords: np.ndarray,
        ids: np.ndarray | None = None,
        *,
        cancel=None,
    ) -> IngestOutcome:
        """Ingest one batch; blocks until the new labels are committed.

        ``coords`` is ``(k, 2)``; ``ids`` supplies external ids (fresh
        ones are allocated past the current maximum when omitted).
        Thread-safe: ingests serialize on an internal lock; queries keep
        reading the previous snapshot until commit.

        ``cancel`` (a :class:`~repro.resilience.CancelToken`) bounds the
        transaction: a cancelled or deadline-expired token unwinds the
        re-cluster with :class:`~repro.errors.OperationCancelledError`
        *before* commit — labels, plan and journal all stay at the
        previous committed state, and the batch's WAL blob (durable but
        never acked) is exactly what a resume replays or drops.
        """
        with self._ingest_lock:
            outcome = self._apply_ingest(coords, ids, journal=True, cancel=cancel)
            self.n_ingests += 1
            return outcome

    def _apply_ingest(
        self,
        coords: np.ndarray,
        ids: np.ndarray | None,
        *,
        journal: bool,
        cancel=None,
    ) -> IngestOutcome:
        t0 = time.perf_counter()
        if cancel is not None:
            cancel.check()
        cfg = self.config
        coords = np.asarray(coords, dtype=np.float64).reshape(-1, 2)
        if len(coords) == 0:
            raise FormatError("empty ingest batch")
        finite = np.isfinite(coords).all(axis=1)
        n_dropped = int((~finite).sum())
        if ids is None:
            start = int(self.external_ids.max()) + 1 if len(self.external_ids) else 0
            ids = np.arange(start, start + len(coords), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if len(ids) != len(coords):
                raise FormatError(
                    f"batch ids ({len(ids)}) and coords ({len(coords)}) disagree"
                )
        coords, ids = coords[finite], ids[finite]
        if len(coords) == 0:
            raise FormatError("ingest batch has no finite points")
        if len(np.unique(ids)) != len(ids):
            raise FormatError("ingest batch repeats an external id")
        clash = [int(e) for e in ids if int(e) in self._ext_to_int]
        if clash:
            raise FormatError(
                f"{len(clash)} external id(s) already resident "
                f"(e.g. {clash[:5]})"
            )

        seq = self.n_ingests
        digest = None
        if journal and self.ingest_log is not None:
            # WAL step 1: the blob is durable before any state changes.
            digest = self.ingest_log.save_batch(seq, coords, ids)
        else:
            digest = batch_digest(coords, ids)

        # ---- plan the incremental run over candidate copies ----------- #
        touched = touched_cells_of(cell_of_coords(coords, cfg.eps))
        plan = copy.deepcopy(self.plan)
        owner = plan.cell_owner()
        new_cells = {c for c in touched if c not in owner}
        adopt_cells(plan, new_cells, owner=owner)
        histogram = GridHistogram(eps=cfg.eps, counts=dict(self.histogram.counts))
        batch_hist = GridHistogram.from_points(
            PointSet(ids=ids, coords=coords), cfg.eps
        )
        histogram = histogram.merge(batch_hist)
        dirty = dirty_partitions(plan, touched, owner=owner)
        # Newly non-empty cells change their neighbors' shadow sets; every
        # such partition is in ``dirty`` by construction, so refreshing
        # exactly the dirty specs restores the shadow invariant.
        for pid in dirty:
            refresh_shadow(plan.partitions[pid], histogram)

        n_internal = len(self.points)
        batch_internal = PointSet(
            ids=np.arange(n_internal, n_internal + len(coords), dtype=np.int64),
            coords=coords,
        )
        points = self.points.concat(batch_internal)
        # Order-stable re-materialization: clean partitions come back
        # with identical content and order, keeping cached labels aligned.
        partitions = partition_points(points, plan)

        if self.checkpoint_dir is not None and dirty:
            store = LeafCheckpointStore(self.checkpoint_dir)
            for pid in dirty:
                store.invalidate(pid)

        cached = {
            pid: out for pid, out in self.outputs.items() if pid not in dirty
        }
        try:
            result = cluster_merge_sweep(
                partitions=partitions,
                plan=plan,
                n_points=len(points),
                config=cfg,
                transport=self.transport,
                dirty=dirty,
                cached_outputs=cached,
                telemetry=self.telemetry,
                checkpoint_dir=self.checkpoint_dir,
                cancel=cancel,
            )
        except BaseException:
            # The aborted run may have spilled checkpoints for dirty
            # leaves clustered over the *candidate* partitions.  The
            # committed state is untouched, but a later ingest dirtying
            # the same leaf must not be satisfied by them — re-invalidate
            # before unwinding.
            if self.checkpoint_dir is not None and dirty:
                store = LeafCheckpointStore(self.checkpoint_dir)
                for pid in dirty:
                    store.invalidate(pid)
            raise

        delay = float(os.environ.get(INGEST_DELAY_ENV, "0") or 0)
        if delay > 0:
            # Chaos window: blob durable, transaction complete, commit
            # and ack still pending — a SIGKILL here must lose exactly
            # this batch and nothing else.
            time.sleep(delay)

        # ---- commit ---------------------------------------------------- #
        external_ids = np.concatenate([self.external_ids, ids])
        with self._snapshot_lock:
            self.points = points
            self.external_ids = external_ids
            for offset, e in enumerate(ids):
                self._ext_to_int[int(e)] = n_internal + offset
            self.histogram = histogram
            self.plan = plan
            self.partitions = partitions
            self.outputs = result.outputs
            self.snapshot = _Snapshot(
                labels=result.labels,
                core_mask=result.core_mask,
                external_ids=external_ids,
                n_clusters=result.n_clusters,
            )
        dirty_ratio = len(dirty) / max(1, cfg.n_leaves)
        self.last_dirty_ratio = dirty_ratio
        self.last_ingest_seconds = time.perf_counter() - t0
        if journal and self.ingest_log is not None:
            # WAL step 2: journaled == acked.
            self.ingest_log.commit(
                seq,
                digest=digest,
                n_points=len(coords),
                dirty_leaves=dirty,
                n_touched_cells=len(touched),
            )
        seconds = time.perf_counter() - t0
        if self.metrics.enabled:
            self.metrics.counter("serve.ingests").inc()
            self.metrics.counter("serve.ingested_points").inc(len(coords))
            self.metrics.counter("serve.reclustered_leaves").inc(len(dirty))
            self.metrics.gauge("serve.dirty_leaf_ratio").set(dirty_ratio)
            self.metrics.gauge("serve.points").set(len(points))
            self.metrics.gauge("serve.clusters").set(result.n_clusters)
            self.metrics.quantile("serve.ingest_seconds").observe(seconds)
        logger.info(
            "serve: ingest %d committed %d point(s); %d/%d dirty leaves "
            "(%.0f%%), %d clusters, %.3fs",
            seq,
            len(coords),
            len(dirty),
            cfg.n_leaves,
            100 * dirty_ratio,
            result.n_clusters,
            seconds,
        )
        return IngestOutcome(
            seq=seq,
            n_points=len(coords),
            n_dropped=n_dropped,
            n_touched_cells=len(touched),
            dirty_leaves=tuple(sorted(dirty)),
            dirty_ratio=dirty_ratio,
            n_reclustered=result.n_fresh,
            n_clusters=result.n_clusters,
            seconds=seconds,
        )

    # ------------------------------------------------------------------ #
    # Queries (read the committed snapshot)
    # ------------------------------------------------------------------ #

    def _snap(self) -> _Snapshot:
        with self._snapshot_lock:
            return self.snapshot

    def labels_for(self, ids) -> tuple[list[int], list[bool]]:
        """Labels and core flags for the given external ids.

        Unknown ids raise :class:`~repro.errors.FormatError` (a service
        answering "-1" for a typo'd id would be indistinguishable from
        noise).
        """
        snap = self._snap()
        t0 = time.perf_counter()
        labels: list[int] = []
        core: list[bool] = []
        for e in ids:
            i = self._ext_to_int.get(int(e))
            if i is None or i >= len(snap.labels):
                raise FormatError(f"unknown point id {int(e)}")
            labels.append(int(snap.labels[i]))
            core.append(bool(snap.core_mask[i]))
        if self.metrics.enabled:
            self.metrics.quantile("serve.query_seconds").observe(
                time.perf_counter() - t0
            )
        return labels, core

    def dump(self) -> dict:
        """The full labelling (external ids, labels, core flags)."""
        snap = self._snap()
        return {
            "ids": [int(e) for e in snap.external_ids],
            "labels": [int(v) for v in snap.labels[: len(snap.external_ids)]],
            "core": [bool(v) for v in snap.core_mask[: len(snap.external_ids)]],
        }

    def stats(self) -> dict:
        snap = self._snap()
        return {
            "n_points": int(len(snap.external_ids)),
            "n_clusters": int(snap.n_clusters),
            "n_noise": int(np.count_nonzero(snap.labels == -1)),
            "n_leaves": int(self.config.n_leaves),
            "n_ingests": int(self.n_ingests),
            "last_dirty_ratio": float(self.last_dirty_ratio),
            "uptime_seconds": time.time() - self.started_at,
            "eps": float(self.config.eps),
            "minpts": int(self.config.minpts),
        }
