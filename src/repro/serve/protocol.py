"""The serve wire format: newline-delimited JSON request/response.

One request per line, one response line per request, in order.  Every
request carries ``op``; every response carries ``ok`` (with ``error``
when false).  The format is deliberately text-JSON rather than a binary
frame: batches at serving granularity are thousands of points, the
clustering dominates the wall time by orders of magnitude, and a
line-oriented protocol is debuggable with ``nc``.

Ops::

    ping      {}                          -> {ok, version}
    ingest    {points: [[x,y],...],
               ids?: [int,...]}           -> {ok, seq, n_points, dirty_leaves,
                                              dirty_ratio, n_clusters, ...}
    labels    {ids: [int,...]}            -> {ok, labels: [...], core: [...]}
    stats     {}                          -> {ok, n_points, n_clusters, ...}
    dump      {}                          -> {ok, ids, labels, core}
    shutdown  {}                          -> {ok}  (server exits cleanly)
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ServeProtocolError",
    "decode_line",
    "encode_message",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (~1M points per batch at
#: ~40 bytes/point) — a guard against unframed garbage, not a quota.
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = ("ping", "ingest", "labels", "stats", "dump", "shutdown")


class ServeProtocolError(Exception):
    """A malformed request or response line."""


def encode_message(message: dict[str, Any]) -> bytes:
    """One wire line (terminated) for a request or response dict."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a dict; raises :class:`ServeProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeProtocolError(
            f"line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeProtocolError(f"unparseable line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeProtocolError("request must be a JSON object")
    return obj


def validate_request(obj: dict[str, Any]) -> str:
    """Check ``op`` presence/validity; returns the op name."""
    op = obj.get("op")
    if op not in OPS:
        raise ServeProtocolError(
            f"unknown op {op!r}; expected one of {OPS}"
        )
    return op


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}
