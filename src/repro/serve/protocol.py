"""The serve wire format: newline-delimited JSON request/response.

One request per line, one response line per request, in order.  Every
request carries ``op``; every response carries ``ok`` (with ``error``
when false).  The format is deliberately text-JSON rather than a binary
frame: batches at serving granularity are thousands of points, the
clustering dominates the wall time by orders of magnitude, and a
line-oriented protocol is debuggable with ``nc``.

Ops (protocol v2)::

    ping      {}                          -> {ok, version}
    ingest    {points: [[x,y],...],
               ids?: [int,...],
               deadline_s?: float}        -> {ok, seq, n_points, dirty_leaves,
                                              dirty_ratio, n_clusters, ...}
    labels    {ids: [int,...]}            -> {ok, labels: [...], core: [...]}
    stats     {}                          -> {ok, n_points, n_clusters, ...}
    dump      {}                          -> {ok, ids, labels, core}
    health    {}                          -> {ok, ready, draining, breaker,
                                              queued_ingests, connections, ...}
    drain     {}                          -> {ok, draining: true}  (stop
                                              admitting ingests; finish or
                                              cancel in-flight work, exit 0)
    shutdown  {}                          -> {ok}  (server exits cleanly)

Error responses carry a machine-readable ``code`` (v2) alongside the
human ``error`` string, and — for retryable sheds — a ``retry_after_s``
hint::

    {ok: false, error: "...", code: "overloaded", retry_after_s: 1.5}

Codes (:data:`ERROR_CODES`):

``overloaded``
    Admission control shed the request (ingest queue full or connection
    cap reached).  Safe to retry after ``retry_after_s`` — the ingest
    never started.
``degraded``
    The circuit breaker is open after repeated infrastructure failures;
    queries still serve the last committed snapshot.  Retryable.
``draining``
    The daemon is shutting down gracefully; no new ingests.  Retry
    against a replacement instance.
``deadline_exceeded``
    The op's deadline expired; any partial work was rolled back.
``cancelled``
    The op was cooperatively cancelled (client gone, drain forced).
``too_large``
    The request exceeded a hard size limit (line bytes or batch
    points).  Not retryable as-is — split the batch.
``bad_request``
    Malformed op/arguments.  Not retryable as-is.
``failed``
    The op ran and failed for a non-retryable reason.

v1 clients ignore the extra fields and keep working; v1 servers simply
never emit ``code`` (clients must treat a missing ``code`` as
``failed``).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "RETRYABLE_CODES",
    "ServeProtocolError",
    "decode_line",
    "encode_message",
    "error_response",
]

PROTOCOL_VERSION = 2

#: Upper bound on one request/response line (~1M points per batch at
#: ~40 bytes/point) — a guard against unframed garbage, not a quota.
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = (
    "ping", "ingest", "labels", "stats", "dump", "health", "drain", "shutdown",
)

#: Machine-readable error codes (see module docstring for semantics).
ERROR_CODES = (
    "overloaded",
    "degraded",
    "draining",
    "deadline_exceeded",
    "cancelled",
    "too_large",
    "bad_request",
    "failed",
)

#: Codes a client may retry verbatim: the ingest was shed *before* any
#: work started, so re-sending cannot double-apply.
RETRYABLE_CODES = frozenset({"overloaded", "degraded"})


class ServeProtocolError(Exception):
    """A malformed request or response line."""


def encode_message(message: dict[str, Any]) -> bytes:
    """One wire line (terminated) for a request or response dict."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a dict; raises :class:`ServeProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeProtocolError(
            f"line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeProtocolError(f"unparseable line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeProtocolError("request must be a JSON object")
    return obj


def validate_request(obj: dict[str, Any]) -> str:
    """Check ``op`` presence/validity; returns the op name."""
    op = obj.get("op")
    if op not in OPS:
        raise ServeProtocolError(
            f"unknown op {op!r}; expected one of {OPS}"
        )
    return op


def error_response(
    message: str,
    code: str | None = None,
    *,
    retry_after_s: float | None = None,
) -> dict[str, Any]:
    """Structured error line.  ``code`` must come from
    :data:`ERROR_CODES`; ``retry_after_s`` is a backoff hint for
    retryable sheds."""
    if code is not None and code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    resp: dict[str, Any] = {"ok": False, "error": message}
    if code is not None:
        resp["code"] = code
    if retry_after_s is not None:
        resp["retry_after_s"] = round(float(retry_after_s), 3)
    return resp
