"""Blocking client for the serve daemon's NDJSON protocol.

The client is deliberately synchronous — callers that need concurrency
open one client per thread (the loadgen does exactly that); the daemon
multiplexes them server-side.

Overload-aware (protocol v2): an error response carrying a retryable
``code`` (``overloaded``/``degraded``) raises
:class:`ServeOverloadedError`, and :meth:`request` can retry it
automatically with jittered backoff honouring the daemon's
``retry_after_s`` hint — safe because a shed ingest never started.
Non-retryable codes (``too_large``, ``deadline_exceeded``, ...) raise
:class:`ServeRequestError` with the code attached.

Example::

    with ServeClient(socket_path="/tmp/mrscan.sock") as c:
        c.ping()
        ack = c.ingest([[0.1, 0.2], [0.11, 0.21]], retries=5)
        labels, core = c.labels(list(range(ack["n_points"])))
"""

from __future__ import annotations

import random
import socket
import time
from pathlib import Path

from ..errors import MrScanError
from .protocol import (
    MAX_LINE_BYTES,
    RETRYABLE_CODES,
    ServeProtocolError,
    decode_line,
    encode_message,
)

__all__ = ["ServeClient", "ServeOverloadedError", "ServeRequestError"]


class ServeRequestError(MrScanError):
    """The daemon answered ``ok: false``.

    ``code`` is the protocol-v2 machine-readable code (None from a v1
    daemon); ``retry_after_s`` the backoff hint, when given.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


class ServeOverloadedError(ServeRequestError):
    """A retryable shed (``overloaded``/``degraded``): the op never
    started server-side, so re-sending it cannot double-apply."""


class ServeClient:
    """One connection to a serve daemon (unix socket or localhost TCP).

    ``timeout`` is the default socket timeout; any op can tighten it for
    one call with its ``timeout=`` keyword.  ``retries`` (constructor
    default, overridable per call) bounds automatic re-sends on
    *retryable* sheds only.
    """

    def __init__(
        self,
        *,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = 600.0,
        retries: int = 0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServeProtocolError(
                "client needs exactly one of socket_path or port"
            )
        if retries < 0:
            raise ServeProtocolError("retries must be >= 0")
        self.default_retries = int(retries)
        self._default_timeout = timeout
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self._sleep = time.sleep  # overridable in tests
        self._rng = random.Random()

    # ------------------------------------------------------------------ #
    # Wire
    # ------------------------------------------------------------------ #

    def _roundtrip(self, message: dict, timeout: float | None) -> dict:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(encode_message(message))
            while b"\n" not in self._buffer:
                if len(self._buffer) > MAX_LINE_BYTES:
                    raise ServeProtocolError("response line exceeds the size cap")
                chunk = self._sock.recv(1 << 20)
                if not chunk:
                    raise ServeProtocolError(
                        "daemon closed the connection mid-response"
                    )
                self._buffer += chunk
        finally:
            if timeout is not None:
                self._sock.settimeout(self._default_timeout)
        line, self._buffer = self._buffer.split(b"\n", 1)
        response = decode_line(line)
        if not response.get("ok"):
            code = response.get("code")
            retry_after = response.get("retry_after_s")
            cls = (
                ServeOverloadedError
                if code in RETRYABLE_CODES
                else ServeRequestError
            )
            raise cls(
                response.get("error", "request failed"),
                code=code,
                retry_after_s=retry_after,
            )
        return response

    def request(
        self,
        message: dict,
        *,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> dict:
        """Send one request and block for its response dict.

        ``timeout`` bounds this call's socket waits (falls back to the
        constructor default).  ``retries`` re-sends up to that many times
        on :class:`ServeOverloadedError` only, sleeping the daemon's
        ``retry_after_s`` hint (default 0.5s) with ±25% jitter each time;
        the final attempt's error propagates.
        """
        budget = self.default_retries if retries is None else int(retries)
        attempt = 0
        while True:
            try:
                return self._roundtrip(message, timeout)
            except ServeOverloadedError as exc:
                if attempt >= budget:
                    raise
                attempt += 1
                base = exc.retry_after_s if exc.retry_after_s else 0.5
                # Jitter so a shed thundering herd doesn't re-arrive in
                # lockstep at exactly the hinted instant.
                self._sleep(max(0.0, base * self._rng.uniform(0.75, 1.25)))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #

    def ping(self, *, timeout: float | None = None) -> dict:
        return self.request({"op": "ping"}, timeout=timeout)

    def ingest(
        self,
        points,
        ids=None,
        *,
        deadline_s: float | None = None,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> dict:
        """Ingest a batch; blocks until the daemon committed and acked.

        ``deadline_s`` asks the daemon to bound the ingest server-side
        (rolled back with ``deadline_exceeded`` past it); ``retries``
        re-sends on overload sheds (see :meth:`request`).
        """
        message: dict = {"op": "ingest", "points": [list(map(float, p)) for p in points]}
        if ids is not None:
            message["ids"] = [int(i) for i in ids]
        if deadline_s is not None:
            message["deadline_s"] = float(deadline_s)
        return self.request(message, timeout=timeout, retries=retries)

    def labels(self, ids, *, timeout: float | None = None) -> tuple[list[int], list[bool]]:
        response = self.request(
            {"op": "labels", "ids": [int(i) for i in ids]}, timeout=timeout
        )
        return response["labels"], response["core"]

    def stats(self, *, timeout: float | None = None) -> dict:
        return self.request({"op": "stats"}, timeout=timeout)

    def dump(self, *, timeout: float | None = None) -> dict:
        """The daemon's full labelling: ``{ids, labels, core}``."""
        return self.request({"op": "dump"}, timeout=timeout)

    def health(self, *, timeout: float | None = None) -> dict:
        """Readiness/overload snapshot: breaker state, queue depth,
        connection counts, transport liveness."""
        return self.request({"op": "health"}, timeout=timeout)

    def drain(self, *, timeout: float | None = None) -> dict:
        """Ask the daemon to drain gracefully (finish or cancel the
        in-flight ingest, commit the journal, exit 0)."""
        return self.request({"op": "drain"}, timeout=timeout)

    def shutdown(self, *, timeout: float | None = None) -> dict:
        return self.request({"op": "shutdown"}, timeout=timeout)
