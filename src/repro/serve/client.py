"""Blocking client for the serve daemon's NDJSON protocol.

The client is deliberately synchronous — callers that need concurrency
open one client per thread (the loadgen does exactly that); the daemon
multiplexes them server-side.

Example::

    with ServeClient(socket_path="/tmp/mrscan.sock") as c:
        c.ping()
        ack = c.ingest([[0.1, 0.2], [0.11, 0.21]])
        labels, core = c.labels(list(range(ack["n_points"])))
"""

from __future__ import annotations

import socket
from pathlib import Path

from ..errors import MrScanError
from .protocol import MAX_LINE_BYTES, ServeProtocolError, decode_line, encode_message

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(MrScanError):
    """The daemon answered ``ok: false``."""


class ServeClient:
    """One connection to a serve daemon (unix socket or localhost TCP)."""

    def __init__(
        self,
        *,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = 600.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServeProtocolError(
                "client needs exactly one of socket_path or port"
            )
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""

    # ------------------------------------------------------------------ #
    # Wire
    # ------------------------------------------------------------------ #

    def request(self, message: dict) -> dict:
        """Send one request and block for its response dict."""
        self._sock.sendall(encode_message(message))
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServeProtocolError("response line exceeds the size cap")
            chunk = self._sock.recv(1 << 20)
            if not chunk:
                raise ServeProtocolError("daemon closed the connection mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        response = decode_line(line)
        if not response.get("ok"):
            raise ServeRequestError(response.get("error", "request failed"))
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def ingest(self, points, ids=None) -> dict:
        """Ingest a batch; blocks until the daemon committed and acked."""
        message: dict = {"op": "ingest", "points": [list(map(float, p)) for p in points]}
        if ids is not None:
            message["ids"] = [int(i) for i in ids]
        return self.request(message)

    def labels(self, ids) -> tuple[list[int], list[bool]]:
        response = self.request({"op": "labels", "ids": [int(i) for i in ids]})
        return response["labels"], response["core"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def dump(self) -> dict:
        """The daemon's full labelling: ``{ids, labels, core}``."""
        return self.request({"op": "dump"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
