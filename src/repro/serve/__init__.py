"""repro.serve — the long-lived clustering service.

Every prior layer of this reproduction runs one *batch*: read a file,
partition, cluster, merge, sweep, exit.  ``repro.serve`` turns the
pipeline into a **daemon**: ``mrscan serve`` holds the clustered world
resident — points, partition plan, per-leaf outputs, the warm
:class:`~repro.runtime.ShmTransport` pool and its arenas — behind an
asyncio socket front end speaking newline-delimited JSON, and accepts
concurrent point-batch ingests and label/stats queries from many
clients.

The ingest path is **incremental** (§3's locality, exploited): a batch
touches a set of Eps-grid cells; only partitions owning a touched cell
or owning one of its 8-neighbors (the shadow-halo spillover) can see
different points, so only those leaves re-cluster
(:mod:`repro.partition.dirty` → :func:`repro.core.pipeline.cluster_merge_sweep`).
Clean leaves' cached outputs re-enter the merge tree untouched, and the
full-tree re-merge + re-sweep keeps global labels equivalent (per
:mod:`repro.validate.equivalence`) to a from-scratch run on the union.

Durability rides PR 5's journal: every acked ingest is an atomic batch
blob plus a write-ahead ``ingest_done`` record
(:class:`repro.durability.IngestLog`), so ``mrscan serve --run-dir X
--resume`` replays a killed daemon back to its last acked ingest.

The daemon protects itself under load (protocol v2): **admission
control** sheds ingests past a bounded queue with a retryable
``overloaded`` response, per-op **deadlines** ride a
:class:`~repro.resilience.CancelToken` threaded down to the transports
(expiry rolls the transaction back, labels and journal untouched), a
**circuit breaker** turns repeated infrastructure failures into fast
``degraded`` rejections while queries keep serving the last committed
snapshot, and SIGTERM/``drain`` exits gracefully — see
:mod:`.overload` and the ``health`` op.

Layers: :mod:`.state` (resident state + the incremental ingest
transaction), :mod:`.protocol` (wire format), :mod:`.overload`
(admission control + circuit breaker), :mod:`.server` (asyncio daemon),
:mod:`.client` (blocking client), :mod:`.loadgen`
(``mrscan bench-serve``).
"""

from .client import ServeClient, ServeOverloadedError, ServeRequestError
from .overload import AdmissionController, CircuitBreaker
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ServeProtocolError,
    decode_line,
    encode_message,
)
from .server import ServeServer
from .state import IngestOutcome, ServeState

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ERROR_CODES",
    "IngestOutcome",
    "PROTOCOL_VERSION",
    "RETRYABLE_CODES",
    "ServeClient",
    "ServeOverloadedError",
    "ServeProtocolError",
    "ServeRequestError",
    "ServeServer",
    "ServeState",
    "decode_line",
    "encode_message",
]
