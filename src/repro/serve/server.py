"""The asyncio serve daemon.

:class:`ServeServer` owns the event loop side only: it accepts
connections on a unix socket (or localhost TCP), reads NDJSON requests,
and dispatches them against a :class:`~repro.serve.state.ServeState`.
Concurrency model:

* **queries** (``labels``/``stats``/``dump``/``ping``/``health``) run
  directly on the event loop — they only read the committed snapshot,
  which the state swaps atomically under its lock, so they stay fast
  while an ingest is in flight;
* **ingests** are offloaded to a single worker thread
  (``run_in_executor``) and serialized by an asyncio lock, so the event
  loop keeps answering queries during the multi-second re-cluster and
  two clients' batches can never interleave their transactions;
* **shutdown** drains cleanly: the op acks, then the server closes its
  listener and wakes :meth:`serve_forever`.

Overload protection (see :mod:`repro.serve.overload`):

* **admission control** — at most ``max_queued_ingests`` ingests may be
  queued-or-running and at most ``max_connections`` clients connected;
  excess load is shed immediately with a retryable ``overloaded``
  response carrying a ``retry_after_s`` hint, never queued unboundedly;
* **deadlines + cancellation** — every ingest runs under a
  :class:`~repro.resilience.CancelToken` (the request's ``deadline_s``
  tightened by the server's ``ingest_deadline``), threaded through the
  re-cluster down to the transports; expiry or a vanished client unwinds
  the transaction before commit, labels and journal untouched;
* a **circuit breaker** — consecutive infrastructure failures trip the
  daemon into degraded mode (ingests rejected fast with ``degraded``,
  queries unaffected); a half-open probe restores service;
* **graceful drain** — :meth:`begin_drain` (the ``drain`` op, SIGTERM)
  stops admitting ingests, lets the in-flight one finish within
  ``drain_grace`` seconds (then cancels it), and exits 0 with the
  journal consistent.

The daemon holds one resident transport for its whole life and lends it
to every partial run via :func:`~repro.runtime.borrow_transport` — the
run-scoped ``close()`` calls inside the pipeline become no-ops and the
pool/arena stay warm.  ``close()`` here is the single place the real
transport dies.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path

import numpy as np

from ..core.config import MrScanConfig
from ..durability.ingestlog import IngestLog
from ..errors import (
    ConfigError,
    DeadlineExceededError,
    FormatError,
    MrScanError,
    OperationCancelledError,
)
from ..points import PointSet
from ..resilience import CancelToken
from ..runtime.executor import borrow_transport, make_transport
from ..telemetry import Telemetry
from .overload import AdmissionController, CircuitBreaker
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServeProtocolError,
    decode_line,
    encode_message,
    error_response,
    validate_request,
)
from .state import ServeState

__all__ = ["ServeServer"]

logger = logging.getLogger("repro.serve")

#: serve.breaker_state gauge values.
_BREAKER_GAUGE = {"closed": 0, "half_open": 1, "open": 2}


def _parse_batch(
    points: list, raw_ids: list | None
) -> tuple[np.ndarray, np.ndarray | None]:
    """CPU-bound request parsing — runs *off* the event loop."""
    coords = np.asarray(points, dtype=np.float64)
    ids = None
    if raw_ids is not None:
        ids = np.asarray(raw_ids, dtype=np.int64)
    return coords, ids


class ServeServer:
    """One serving session: resident state + socket front end.

    Parameters mirror :class:`~repro.serve.state.ServeState`; the server
    additionally owns the listener (``socket_path`` XOR ``port``) and —
    when built from a transport *name* — the resident transport.

    Overload knobs
    --------------
    max_queued_ingests:
        Ingests queued-or-running before new ones are shed (>= 1).
    max_connections:
        Concurrent client connections before new ones are refused.
    ingest_deadline:
        Server-side ceiling (seconds) on any ingest; a request's own
        ``deadline_s`` can only tighten it.  None = no server ceiling.
    max_batch_points:
        Hard cap on points per ingest batch (``too_large`` beyond it).
    breaker_threshold / breaker_reset:
        Circuit breaker: consecutive infrastructure failures to trip,
        and seconds open before the half-open probe.
    drain_grace:
        Seconds :meth:`begin_drain` waits for the in-flight ingest
        before cancelling it.
    max_line_bytes:
        Per-line wire cap (default :data:`~repro.serve.protocol.MAX_LINE_BYTES`).
    write_timeout:
        Seconds a response write may stall on a slow client before the
        connection is aborted (the handler must never wedge on one
        reader).
    """

    def __init__(
        self,
        base: PointSet,
        config: MrScanConfig,
        *,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        transport=None,
        telemetry: Telemetry | None = None,
        run_dir: str | Path | None = None,
        resume: bool = False,
        max_queued_ingests: int = 8,
        max_connections: int = 64,
        ingest_deadline: float | None = None,
        max_batch_points: int = 1_000_000,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        drain_grace: float = 10.0,
        max_line_bytes: int = MAX_LINE_BYTES,
        write_timeout: float = 30.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise FormatError("serve needs exactly one of socket_path or port")
        if ingest_deadline is not None and ingest_deadline <= 0:
            raise ConfigError("ingest_deadline must be positive (or None)")
        if max_batch_points < 1:
            raise ConfigError("max_batch_points must be >= 1")
        if drain_grace < 0:
            raise ConfigError("drain_grace must be >= 0")
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.ingest_deadline = ingest_deadline
        self.max_batch_points = int(max_batch_points)
        self.drain_grace = float(drain_grace)
        self.max_line_bytes = int(max_line_bytes)
        self.write_timeout = float(write_timeout)
        self.admission = AdmissionController(
            max_queued=max_queued_ingests, max_connections=max_connections
        )
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold, reset_after_s=breaker_reset
        )
        self._owns_transport = transport is None or isinstance(transport, str)
        if self._owns_transport:
            transport = make_transport(
                transport if isinstance(transport, str) else config.resolved_transport(),
                n_workers=config.transport_workers,
                tracer=self.telemetry.tracer,
                metrics=self.telemetry.metrics,
            )
        self._transport = transport
        self.ingest_log = None
        checkpoint_dir = config.checkpoint_dir
        if run_dir is not None:
            run_dir = Path(run_dir)
            self.ingest_log = IngestLog(
                run_dir, metrics=self.telemetry.metrics
            )
            if checkpoint_dir is None:
                checkpoint_dir = str(run_dir / "leaves")
        self.state = ServeState(
            base,
            config,
            transport=borrow_transport(self._transport),
            telemetry=self.telemetry,
            ingest_log=self.ingest_log,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        self._ingest_lock = asyncio.Lock()
        self._ingest_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-ingest"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        #: Token of the ingest currently executing (loop thread only).
        self._active_token: CancelToken | None = None
        self.closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path),
                limit=self.max_line_bytes,
            )
            where = str(self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=self.max_line_bytes,
            )
            self.port = self._server.sockets[0].getsockname()[1]
            where = f"{self.host}:{self.port}"
        logger.info("serve: listening on %s", where)

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` op, a completed drain, or
        :meth:`close` arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        # Drain the listener and live connections while the loop is still
        # running: a client that connected between the shutdown ack and
        # the caller's close() must see EOF, not a reply the stopped loop
        # would never send.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._connections:
            await asyncio.sleep(0)  # let handlers observe the close

    def begin_drain(self) -> None:
        """Stop admitting ingests and shut down once the in-flight one
        finishes (or ``drain_grace`` elapses, whereupon it is cancelled
        and rolled back).  Idempotent; must run on the event loop — wire
        it to SIGTERM/SIGINT with ``loop.add_signal_handler``.
        """
        if self._draining:
            return
        self._draining = True
        logger.info(
            "serve: drain requested (grace %.1fs for in-flight ingest)",
            self.drain_grace,
        )
        self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        try:
            await asyncio.wait_for(
                self._ingest_lock.acquire(), self.drain_grace or None
            )
        except asyncio.TimeoutError:
            token = self._active_token
            if token is not None:
                logger.warning(
                    "serve: drain grace expired; cancelling in-flight ingest"
                )
                token.cancel("draining")
            # The cancelled transaction unwinds at its next poll point
            # and releases the lock; wait for it so the journal is
            # quiesced before the listener goes down.
            await self._ingest_lock.acquire()
        self._ingest_lock.release()
        logger.info("serve: drained; shutting down")
        self._shutdown.set()

    def close(self) -> None:
        """Tear down listener, ingest thread, log, and owned transport."""
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server.close()
        token = self._active_token
        if token is not None:
            token.cancel("server closing")
        self._ingest_pool.shutdown(wait=True)
        if self.ingest_log is not None:
            self.ingest_log.close()
        if self._owns_transport:
            self._transport.close()
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()
        self._shutdown.set()

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        """Write one response line; False = client too slow / gone (the
        connection is aborted so a stalled reader can never wedge the
        handler or pin the ingest path)."""
        try:
            writer.write(encode_message(response))
            await asyncio.wait_for(writer.drain(), self.write_timeout)
            return True
        except asyncio.TimeoutError:
            logger.warning(
                "serve: response write stalled > %.1fs; aborting connection",
                self.write_timeout,
            )
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        except (ConnectionResetError, BrokenPipeError):
            return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or "unix"
        if not self.admission.try_connect():
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("serve.shed").inc()
            await self._send(
                writer,
                error_response(
                    f"connection cap ({self.admission.max_connections}) reached",
                    "overloaded",
                    retry_after_s=self._retry_after_estimate(),
                ),
            )
            writer.close()
            return
        self._connections.add(writer)
        # One pending readline at a time.  During an ingest the pending
        # read doubles as the client-abandonment watcher: EOF mid-ingest
        # cancels the transaction; a data line is simply the pipelined
        # next request, consumed by the following loop iteration.
        read_task: asyncio.Future | None = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(reader.readline())
                try:
                    line = await read_task
                except ValueError:
                    # Over-long line: the stream's framing is lost (the
                    # buffer holds a partial line), so answer once with a
                    # framed limit error and drop the connection rather
                    # than dying silently.
                    await self._send(
                        writer,
                        error_response(
                            f"request line exceeds {self.max_line_bytes} bytes",
                            "too_large",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                finally:
                    read_task = None
                if not line:
                    break
                try:
                    request = decode_line(line)
                    op = validate_request(request)
                except ServeProtocolError as exc:
                    if not await self._send(
                        writer, error_response(str(exc), "bad_request")
                    ):
                        break
                    continue
                if op == "ingest":
                    # Arm the abandonment watcher before the blocking
                    # phase; it becomes the next read either way.
                    read_task = asyncio.ensure_future(reader.readline())
                    response = await self._handle_ingest(request, watch=read_task)
                else:
                    response = await self._dispatch(op, request)
                if not await self._send(writer, response):
                    break
                if response.get("bye"):
                    break
        except asyncio.CancelledError:
            # Loop teardown (asyncio.run cancels pending tasks on exit).
            # Returning instead of re-raising keeps the stdlib stream
            # protocol's done-callback — which calls task.exception()
            # without a cancelled() guard — from logging a traceback.
            pass
        finally:
            if read_task is not None:
                read_task.cancel()
            self._connections.discard(writer)
            self.admission.disconnect()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        logger.debug("serve: connection from %s closed", peer)

    async def _dispatch(self, op: str, request: dict) -> dict:
        try:
            if op == "ping":
                return {"ok": True, "version": PROTOCOL_VERSION}
            if op == "stats":
                return {"ok": True, **self.state.stats()}
            if op == "dump":
                return {"ok": True, **self.state.dump()}
            if op == "health":
                return self._health()
            if op == "labels":
                ids = request.get("ids")
                if not isinstance(ids, list) or not ids:
                    return error_response(
                        "labels needs a non-empty ids list", "bad_request"
                    )
                labels, core = self.state.labels_for(ids)
                return {"ok": True, "labels": labels, "core": core}
            if op == "drain":
                self.begin_drain()
                return {"ok": True, "draining": True}
            if op == "shutdown":
                # Ack first, then wake serve_forever — the caller's loop
                # does the actual close() so in-flight cleanup is single-
                # threaded.
                self._draining = True
                asyncio.get_running_loop().call_soon(self._shutdown.set)
                return {"ok": True, "bye": True}
        except (MrScanError, FormatError) as exc:
            return error_response(str(exc), "failed")
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("serve: internal error handling %s", op)
            return error_response(
                f"internal error: {type(exc).__name__}: {exc}", "failed"
            )
        return error_response(f"unhandled op {op!r}", "bad_request")

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    def _transport_health(self) -> dict:
        t = self._transport
        info: dict = {
            "type": type(getattr(t, "inner", t)).__name__,
            "closed": bool(getattr(t, "closed", False)),
        }
        conns = getattr(t, "_conns", None)
        if conns is not None:  # TcpTransport: live worker agents
            info["live_workers"] = sum(1 for c in conns if c.alive)
        return info

    def _health(self) -> dict:
        breaker = self.breaker.snapshot()
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.gauge("serve.breaker_state").set(
                _BREAKER_GAUGE.get(breaker["state"], 0)
            )
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "ready": not self._draining and breaker["state"] != "open",
            "draining": self._draining,
            "breaker": breaker,
            "transport": self._transport_health(),
            "n_ingests": int(self.state.n_ingests),
            "uptime_seconds": time.time() - self.state.started_at,
            **self.admission.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # Ingest: admission -> deadline -> execute -> breaker bookkeeping
    # ------------------------------------------------------------------ #

    def _retry_after_estimate(self) -> float:
        """Backoff hint: roughly how long until an ingest slot frees —
        the last ingest's wall time times the queue ahead of you."""
        per = max(0.25, float(self.state.last_ingest_seconds) or 0.25)
        return per * (self.admission.queued + 1)

    def _effective_deadline(self, request: dict) -> float | None:
        """min(server ceiling, request deadline_s); None = unbounded."""
        requested = request.get("deadline_s")
        if requested is not None:
            requested = float(requested)
            if not requested > 0:
                raise FormatError("deadline_s must be a positive number")
        candidates = [
            d for d in (self.ingest_deadline, requested) if d is not None
        ]
        return min(candidates) if candidates else None

    async def _handle_ingest(
        self, request: dict, watch: asyncio.Future | None = None
    ) -> dict:
        metrics = self.telemetry.metrics
        if self._draining:
            return error_response(
                "daemon is draining; no new ingests", "draining"
            )
        if not self.breaker.allow():
            if metrics.enabled:
                metrics.counter("serve.shed").inc()
            return error_response(
                "circuit breaker open after repeated ingest failures; "
                "queries still serve the last committed snapshot",
                "degraded",
                retry_after_s=max(self.breaker.retry_after_s(), 0.1),
            )
        points = request.get("points")
        try:
            if not isinstance(points, list) or not points:
                raise FormatError("ingest needs a non-empty points list")
            if len(points) > self.max_batch_points:
                self.breaker.abandon_probe()
                return error_response(
                    f"batch of {len(points)} points exceeds the "
                    f"{self.max_batch_points}-point limit; split it",
                    "too_large",
                )
            deadline = self._effective_deadline(request)
            raw_ids = request.get("ids")
            if raw_ids is not None and not isinstance(raw_ids, list):
                raise FormatError("ingest ids must be a list")
        except (FormatError, TypeError, ValueError) as exc:
            self.breaker.abandon_probe()
            return error_response(str(exc), "bad_request")

        if not self.admission.try_acquire():
            self.breaker.abandon_probe()
            if metrics.enabled:
                metrics.counter("serve.shed").inc()
            return error_response(
                f"ingest queue full ({self.admission.max_queued} "
                "queued-or-running)",
                "overloaded",
                retry_after_s=self._retry_after_estimate(),
            )
        if metrics.enabled:
            metrics.gauge("serve.queue_depth").set(self.admission.queued)
        loop = asyncio.get_running_loop()
        token = CancelToken(deadline_s=deadline)
        if watch is not None:
            # Client-abandonment watcher: EOF while this ingest is queued
            # or running means nobody is waiting for the answer — stop
            # burning the worker pool and roll back.  A *data* completion
            # is just the pipelined next request; leave it be.
            def _on_watch_done(task: asyncio.Future) -> None:
                if task.cancelled():
                    return
                if task.exception() is None and task.result() == b"":
                    token.cancel("client disconnected")

            watch.add_done_callback(_on_watch_done)
        executed = False
        try:
            try:
                coords, ids = await loop.run_in_executor(
                    None, _parse_batch, points, raw_ids
                )
            except (TypeError, ValueError) as exc:
                return error_response(
                    f"malformed ingest payload: {exc}", "bad_request"
                )
            t_queued = time.perf_counter()
            try:
                await asyncio.wait_for(
                    self._ingest_lock.acquire(), token.remaining()
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "deadline expired while queued behind other ingests"
                ) from None
            try:
                queue_wait = time.perf_counter() - t_queued
                if metrics.enabled:
                    metrics.quantile("serve.queue_wait_seconds").observe(
                        queue_wait
                    )
                token.check()  # queued past the deadline / client gone
                if self._draining:
                    return error_response(
                        "daemon is draining; no new ingests", "draining"
                    )
                executed = True
                self._active_token = token
                outcome = await loop.run_in_executor(
                    self._ingest_pool,
                    partial(self.state.ingest, coords, ids, cancel=token),
                )
            finally:
                self._active_token = None
                self._ingest_lock.release()
            self.breaker.record_success()
            return {"ok": True, **outcome.as_dict()}
        except DeadlineExceededError as exc:
            if metrics.enabled:
                metrics.counter("serve.deadline_exceeded").inc()
            return error_response(str(exc), "deadline_exceeded")
        except OperationCancelledError as exc:
            return error_response(str(exc), "cancelled")
        except (FormatError, ConfigError) as exc:
            # Client mistake: never counts toward the breaker.
            return error_response(str(exc), "bad_request")
        except Exception as exc:
            # Infrastructure failure (transport death, respawn budget
            # exhausted, poison batch, anything unexpected): count it.
            self.breaker.record_failure()
            snap = self.breaker.snapshot()
            logger.exception(
                "serve: ingest failed (%d consecutive infra failure(s), "
                "breaker %s)",
                snap["consecutive_failures"],
                snap["state"],
            )
            if metrics.enabled:
                metrics.gauge("serve.breaker_state").set(
                    _BREAKER_GAUGE.get(snap["state"], 0)
                )
            return error_response(
                f"ingest failed: {type(exc).__name__}: {exc}", "failed"
            )
        finally:
            # Free the half-open probe slot on every path that neither
            # judged the backend (cancelled, deadline, bad request) —
            # a no-op after record_success/record_failure.
            self.breaker.abandon_probe()
            self.admission.release()
            if metrics.enabled:
                metrics.gauge("serve.queue_depth").set(self.admission.queued)
