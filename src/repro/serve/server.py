"""The asyncio serve daemon.

:class:`ServeServer` owns the event loop side only: it accepts
connections on a unix socket (or localhost TCP), reads NDJSON requests,
and dispatches them against a :class:`~repro.serve.state.ServeState`.
Concurrency model:

* **queries** (``labels``/``stats``/``dump``/``ping``) run directly on
  the event loop — they only read the committed snapshot, which the
  state swaps atomically under its lock, so they stay fast while an
  ingest is in flight;
* **ingests** are offloaded to a single worker thread
  (``run_in_executor``) and serialized by an asyncio lock, so the event
  loop keeps answering queries during the multi-second re-cluster and
  two clients' batches can never interleave their transactions;
* **shutdown** drains cleanly: the op acks, then the server closes its
  listener and wakes :meth:`serve_forever`.

The daemon holds one resident transport for its whole life and lends it
to every partial run via :func:`~repro.runtime.borrow_transport` — the
run-scoped ``close()`` calls inside the pipeline become no-ops and the
pool/arena stay warm.  ``close()`` here is the single place the real
transport dies.
"""

from __future__ import annotations

import asyncio
import logging
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from ..core.config import MrScanConfig
from ..durability.ingestlog import IngestLog
from ..errors import FormatError, MrScanError
from ..points import PointSet
from ..runtime.executor import borrow_transport, make_transport
from ..telemetry import Telemetry
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServeProtocolError,
    decode_line,
    encode_message,
    error_response,
    validate_request,
)
from .state import ServeState

__all__ = ["ServeServer"]

logger = logging.getLogger("repro.serve")


class ServeServer:
    """One serving session: resident state + socket front end.

    Parameters mirror :class:`~repro.serve.state.ServeState`; the server
    additionally owns the listener (``socket_path`` XOR ``port``) and —
    when built from a transport *name* — the resident transport.
    """

    def __init__(
        self,
        base: PointSet,
        config: MrScanConfig,
        *,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        transport=None,
        telemetry: Telemetry | None = None,
        run_dir: str | Path | None = None,
        resume: bool = False,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise FormatError("serve needs exactly one of socket_path or port")
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._owns_transport = transport is None or isinstance(transport, str)
        if self._owns_transport:
            transport = make_transport(
                transport if isinstance(transport, str) else config.resolved_transport(),
                n_workers=config.transport_workers,
                tracer=self.telemetry.tracer,
                metrics=self.telemetry.metrics,
            )
        self._transport = transport
        self.ingest_log = None
        checkpoint_dir = config.checkpoint_dir
        if run_dir is not None:
            run_dir = Path(run_dir)
            self.ingest_log = IngestLog(
                run_dir, metrics=self.telemetry.metrics
            )
            if checkpoint_dir is None:
                checkpoint_dir = str(run_dir / "leaves")
        self.state = ServeState(
            base,
            config,
            transport=borrow_transport(self._transport),
            telemetry=self.telemetry,
            ingest_log=self.ingest_log,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        self._ingest_lock = asyncio.Lock()
        self._ingest_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-ingest"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self.closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.socket_path),
                limit=MAX_LINE_BYTES,
            )
            where = str(self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=MAX_LINE_BYTES,
            )
            self.port = self._server.sockets[0].getsockname()[1]
            where = f"{self.host}:{self.port}"
        logger.info("serve: listening on %s", where)

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` op (or :meth:`close`) arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        # Drain the listener and live connections while the loop is still
        # running: a client that connected between the shutdown ack and
        # the caller's close() must see EOF, not a reply the stopped loop
        # would never send.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._connections:
            await asyncio.sleep(0)  # let handlers observe the close

    def close(self) -> None:
        """Tear down listener, ingest thread, log, and owned transport."""
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server.close()
        self._ingest_pool.shutdown(wait=True)
        if self.ingest_log is not None:
            self.ingest_log.close()
        if self._owns_transport:
            self._transport.close()
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()
        self._shutdown.set()

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or "unix"
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionResetError):
                    break  # over-long line or client vanished
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("bye"):
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        logger.debug("serve: connection from %s closed", peer)

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = decode_line(line)
            op = validate_request(request)
        except ServeProtocolError as exc:
            return error_response(str(exc))
        try:
            if op == "ping":
                return {"ok": True, "version": PROTOCOL_VERSION}
            if op == "stats":
                return {"ok": True, **self.state.stats()}
            if op == "dump":
                return {"ok": True, **self.state.dump()}
            if op == "labels":
                ids = request.get("ids")
                if not isinstance(ids, list) or not ids:
                    return error_response("labels needs a non-empty ids list")
                labels, core = self.state.labels_for(ids)
                return {"ok": True, "labels": labels, "core": core}
            if op == "ingest":
                return await self._handle_ingest(request)
            if op == "shutdown":
                # Ack first, then wake serve_forever — the caller's loop
                # does the actual close() so in-flight cleanup is single-
                # threaded.
                asyncio.get_running_loop().call_soon(self._shutdown.set)
                return {"ok": True, "bye": True}
        except (MrScanError, FormatError) as exc:
            return error_response(str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("serve: internal error handling %s", op)
            return error_response(f"internal error: {type(exc).__name__}: {exc}")
        return error_response(f"unhandled op {op!r}")

    async def _handle_ingest(self, request: dict) -> dict:
        points = request.get("points")
        if not isinstance(points, list) or not points:
            return error_response("ingest needs a non-empty points list")
        try:
            coords = np.asarray(points, dtype=np.float64)
            ids = request.get("ids")
            if ids is not None:
                ids = np.asarray(ids, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            return error_response(f"malformed ingest payload: {exc}")
        loop = asyncio.get_running_loop()
        async with self._ingest_lock:
            outcome = await loop.run_in_executor(
                self._ingest_pool, self.state.ingest, coords, ids
            )
        return {"ok": True, **outcome.as_dict()}
