"""``mrscan bench-serve``: load generation against a live daemon.

Boots a real :class:`~repro.serve.ServeServer` (unix socket, in-process
event loop on a background thread), then drives it the way a production
client would: one ingest stream of spatially-local batches plus N
concurrent query clients hammering ``labels`` on random resident ids.
Client-side wall times feed the latency percentiles; the server's acks
supply the dirty-leaf fractions.  After the stream drains, the same
union dataset is re-clustered from scratch once (the PR 5 pipeline) to
anchor the headline number: *incremental ingest vs full re-cluster
speedup*, gated on label equivalence between the two.

Output schema (``BENCH_PR6.json``)::

    {"config": {...}, "sizes": [{"resident_points": ...,
        "batches_per_sec": ..., "dirty_leaf_fraction_mean": ...,
        "ingest_seconds": {"p50": ..., "p99": ...},
        "query_seconds": {"p50": ..., "p99": ...},
        "full_recluster_seconds": ..., "mean_ingest_seconds": ...,
        "speedup_incremental_vs_full": ..., "equivalence": "..."}, ...]}
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from ..core.config import MrScanConfig
from ..core.pipeline import run_pipeline
from ..points import PointSet
from ..telemetry.metrics import Quantile
from ..validate.equivalence import labels_equivalent
from .client import ServeClient, ServeOverloadedError, ServeRequestError
from .server import ServeServer

__all__ = ["run_overload_bench", "run_serve_bench", "write_bench"]


def _clustered_base(n: int, rng: np.random.Generator) -> np.ndarray:
    """Blob-mixture base data (same shape family as ``mrscan generate``)."""
    n_blobs = max(4, int(np.sqrt(n) / 8))
    centers = rng.uniform(-4, 4, size=(n_blobs, 2))
    which = rng.integers(0, n_blobs, size=n)
    return centers[which] + rng.normal(0, 0.12, size=(n, 2))


def _local_batch(
    base_coords: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """A spatially-local batch near one existing point — the serving
    workload the dirty-partition planner is built for."""
    anchor = base_coords[int(rng.integers(0, len(base_coords)))]
    return anchor + rng.normal(0, 0.05, size=(size, 2))


def run_serve_bench(
    *,
    resident_points: int,
    n_batches: int = 10,
    batch_size: int = 500,
    n_query_clients: int = 2,
    queries_per_client: int = 50,
    eps: float = 0.08,
    minpts: int = 8,
    n_leaves: int = 16,
    transport: str = "local",
    seed: int = 0,
    skip_full: bool = False,
) -> dict:
    """One size point of the bench; returns its result dict."""
    rng = np.random.default_rng(seed)
    base = PointSet.from_coords(_clustered_base(resident_points, rng))
    config = MrScanConfig(
        eps=eps, minpts=minpts, n_leaves=n_leaves, transport=transport
    )

    workdir = Path(tempfile.mkdtemp(prefix="mrscan-bench-serve-"))
    socket_path = workdir / "serve.sock"

    loop = asyncio.new_event_loop()
    server_box: dict = {}
    started = threading.Event()

    def _run_server() -> None:
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            server = ServeServer(
                base, config, socket_path=socket_path, transport=transport
            )
            server_box["server"] = server
            await server.start()
            started.set()
            await server.serve_forever()
            server.close()

        loop.run_until_complete(_main())

    thread = threading.Thread(target=_run_server, name="bench-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=600):
        raise RuntimeError("bench-serve daemon failed to start")

    ingest_q = Quantile("ingest_seconds")
    query_q = Quantile("query_seconds")
    ingest_times: list[float] = []
    dirty_fractions: list[float] = []
    stop_queries = threading.Event()

    def _query_worker(worker_seed: int) -> None:
        qrng = np.random.default_rng(worker_seed)
        with ServeClient(socket_path=socket_path) as c:
            for _ in range(queries_per_client):
                if stop_queries.is_set():
                    break
                ids = qrng.integers(0, resident_points, size=16).tolist()
                t0 = time.perf_counter()
                c.labels(ids)
                query_q.observe(time.perf_counter() - t0)

    query_threads = [
        threading.Thread(target=_query_worker, args=(seed + 100 + i,), daemon=True)
        for i in range(n_query_clients)
    ]
    for t in query_threads:
        t.start()

    batches: list[np.ndarray] = []
    t_stream0 = time.perf_counter()
    with ServeClient(socket_path=socket_path) as c:
        c.ping()
        for _ in range(n_batches):
            batch = _local_batch(base.coords, batch_size, rng)
            batches.append(batch)
            t0 = time.perf_counter()
            ack = c.ingest(batch.tolist())
            ingest_times.append(time.perf_counter() - t0)
            ingest_q.observe(ingest_times[-1])
            dirty_fractions.append(float(ack["dirty_ratio"]))
        stream_seconds = time.perf_counter() - t_stream0
        stop_queries.set()
        for t in query_threads:
            t.join(timeout=120)
        final = c.dump()
        c.shutdown()
    thread.join(timeout=120)

    result: dict = {
        "resident_points": resident_points,
        "n_batches": n_batches,
        "batch_size": batch_size,
        "n_query_clients": n_query_clients,
        "batches_per_sec": n_batches / stream_seconds if stream_seconds else None,
        "dirty_leaf_fraction_mean": (
            float(np.mean(dirty_fractions)) if dirty_fractions else None
        ),
        "ingest_seconds": {
            "p50": ingest_q.percentile(50.0),
            "p99": ingest_q.percentile(99.0),
        },
        "query_seconds": {
            "p50": query_q.percentile(50.0),
            "p99": query_q.percentile(99.0),
        },
    }

    if not skip_full:
        # From-scratch anchor: one full pipeline run on the exact union
        # the daemon converged to (base then batches in ack order, which
        # is the daemon's internal-id order).
        union = PointSet(
            ids=np.arange(resident_points + n_batches * batch_size, dtype=np.int64),
            coords=np.vstack([base.coords] + batches),
        )
        t_full0 = time.perf_counter()
        full = run_pipeline(union, config, transport=transport)
        full_seconds = time.perf_counter() - t_full0
        report = labels_equivalent(
            union,
            eps,
            full.labels,
            full.core_mask,
            np.asarray(final["labels"], dtype=np.int64),
            np.asarray(final["core"], dtype=bool),
        )
        mean_ingest_seconds = (
            float(np.mean(ingest_times)) if ingest_times else None
        )
        result.update(
            {
                "full_recluster_seconds": full_seconds,
                "mean_ingest_seconds": mean_ingest_seconds,
                "speedup_incremental_vs_full": (
                    full_seconds / mean_ingest_seconds
                    if mean_ingest_seconds
                    else None
                ),
                "equivalence": report.summary(),
                "equivalence_ok": bool(report.ok),
            }
        )
    return result


def run_overload_bench(
    *,
    resident_points: int = 4000,
    flood_clients: int = 6,
    batches_per_client: int = 4,
    batch_size: int = 60,
    max_queued_ingests: int = 2,
    n_query_clients: int = 2,
    eps: float = 0.08,
    minpts: int = 8,
    n_leaves: int = 16,
    transport: str = "local",
    seed: int = 0,
    op_timeout: float = 300.0,
    stalled_client: bool = True,
    skip_full: bool = False,
) -> dict:
    """The overload chaos scenario (``mrscan bench-serve --overload``).

    Floods a daemon configured with a deliberately tiny ingest queue
    (``max_queued_ingests``) from ``flood_clients`` concurrent ingest
    streams, while query clients hammer ``labels`` and a health poller
    watches queue depth — plus one stalled client that sends a request
    and never reads its response.  Every client op carries a hard
    timeout; an op that times out counts as a **hang**.

    The returned dict carries everything the CI gate asserts on:

    * ``hangs`` — must be 0 (every request got a response in time);
    * ``max_queue_depth_seen`` vs ``max_queued_ingests`` — admission
      control keeps the queue bounded under flood;
    * ``shed_total`` / ``shed_malformed`` — sheds happened and every one
      was a well-formed retryable response (``code`` in
      overloaded/degraded, positive ``retry_after_s``);
    * ``query_seconds.p99`` — queries stay fast during the flood;
    * ``equivalence_ok`` — the final labels equal a from-scratch run on
      exactly the acked batches (sheds lost nothing that was acked).
    """
    rng = np.random.default_rng(seed)
    base = PointSet.from_coords(_clustered_base(resident_points, rng))
    config = MrScanConfig(
        eps=eps, minpts=minpts, n_leaves=n_leaves, transport=transport
    )

    workdir = Path(tempfile.mkdtemp(prefix="mrscan-bench-overload-"))
    socket_path = workdir / "serve.sock"

    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run_server() -> None:
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            server = ServeServer(
                base,
                config,
                socket_path=socket_path,
                transport=transport,
                max_queued_ingests=max_queued_ingests,
            )
            await server.start()
            started.set()
            await server.serve_forever()
            server.close()

        loop.run_until_complete(_main())

    thread = threading.Thread(
        target=_run_server, name="bench-overload", daemon=True
    )
    thread.start()
    if not started.wait(timeout=600):
        raise RuntimeError("overload-bench daemon failed to start")

    hangs: list[str] = []
    shed_total = [0]
    shed_malformed: list[str] = []
    acked: list[tuple[int, np.ndarray, np.ndarray]] = []  # (seq, coords, ids)
    record_lock = threading.Lock()
    stop = threading.Event()
    query_q = Quantile("query_seconds")
    max_depth_seen = [0]
    health_snapshots: list[dict] = []

    def _flood_worker(idx: int) -> None:
        wrng = np.random.default_rng(seed + 1000 + idx)
        # Disjoint external-id space per client, past the resident ids.
        next_id = resident_points + idx * batches_per_client * batch_size
        try:
            with ServeClient(socket_path=socket_path, timeout=op_timeout) as c:
                for _ in range(batches_per_client):
                    batch = _local_batch(base.coords, batch_size, wrng)
                    ids = np.arange(next_id, next_id + batch_size, dtype=np.int64)
                    next_id += batch_size
                    # Manual retry so every shed can be inspected for
                    # well-formedness before re-sending.
                    for _attempt in range(50):
                        try:
                            ack = c.ingest(batch.tolist(), ids=ids.tolist())
                        except ServeOverloadedError as exc:
                            shed_total[0] += 1
                            if exc.code not in ("overloaded", "degraded"):
                                shed_malformed.append(f"code={exc.code!r}")
                            if not (
                                exc.retry_after_s is not None
                                and exc.retry_after_s > 0
                            ):
                                shed_malformed.append(
                                    f"retry_after_s={exc.retry_after_s!r}"
                                )
                            time.sleep(
                                min(exc.retry_after_s or 0.5, 2.0)
                                * wrng.uniform(0.5, 1.0)
                            )
                            continue
                        with record_lock:
                            acked.append((int(ack["seq"]), batch, ids))
                        break
        except (TimeoutError, OSError) as exc:
            hangs.append(f"flood[{idx}]: {type(exc).__name__}: {exc}")
        except ServeRequestError:
            pass  # a non-retryable reject is not a hang

    def _query_worker(idx: int) -> None:
        qrng = np.random.default_rng(seed + 2000 + idx)
        try:
            with ServeClient(socket_path=socket_path, timeout=op_timeout) as c:
                while not stop.is_set():
                    ids = qrng.integers(0, resident_points, size=16).tolist()
                    t0 = time.perf_counter()
                    c.labels(ids)
                    query_q.observe(time.perf_counter() - t0)
                    time.sleep(0.005)
        except (TimeoutError, OSError) as exc:
            hangs.append(f"query[{idx}]: {type(exc).__name__}: {exc}")

    def _health_worker() -> None:
        try:
            with ServeClient(socket_path=socket_path, timeout=op_timeout) as c:
                while not stop.is_set():
                    h = c.health(timeout=op_timeout)
                    health_snapshots.append(h)
                    max_depth_seen[0] = max(
                        max_depth_seen[0], int(h["queued_ingests"])
                    )
                    time.sleep(0.05)
        except (TimeoutError, OSError) as exc:
            hangs.append(f"health: {type(exc).__name__}: {exc}")

    stalled_sock = None
    if stalled_client:
        # A client that sends a request and never reads the response must
        # not wedge the daemon (its response write either fits the socket
        # buffer or times out and the connection is aborted server-side).
        import socket as _socket

        stalled_sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        stalled_sock.connect(str(socket_path))
        stalled_sock.sendall(b'{"op":"dump"}\n')

    floods = [
        threading.Thread(target=_flood_worker, args=(i,), daemon=True)
        for i in range(flood_clients)
    ]
    queries = [
        threading.Thread(target=_query_worker, args=(i,), daemon=True)
        for i in range(n_query_clients)
    ]
    health_thread = threading.Thread(target=_health_worker, daemon=True)
    t_flood0 = time.perf_counter()
    for t in floods + queries + [health_thread]:
        t.start()
    for t in floods:
        t.join(timeout=op_timeout * 2)
        if t.is_alive():
            hangs.append("flood thread never finished")
    stop.set()
    for t in queries + [health_thread]:
        t.join(timeout=60)
    flood_seconds = time.perf_counter() - t_flood0
    if stalled_sock is not None:
        stalled_sock.close()

    final = None
    final_health = None
    try:
        with ServeClient(socket_path=socket_path, timeout=op_timeout) as c:
            final_health = c.health()
            final = c.dump()
            c.shutdown()
    except (TimeoutError, OSError) as exc:
        hangs.append(f"final: {type(exc).__name__}: {exc}")
    thread.join(timeout=120)

    result: dict = {
        "scenario": "overload",
        "resident_points": resident_points,
        "flood_clients": flood_clients,
        "batches_per_client": batches_per_client,
        "batch_size": batch_size,
        "max_queued_ingests": max_queued_ingests,
        "flood_seconds": flood_seconds,
        "hangs": len(hangs),
        "hang_details": hangs[:10],
        "acked_batches": len(acked),
        "expected_batches": flood_clients * batches_per_client,
        "shed_total": shed_total[0],
        "shed_malformed": shed_malformed[:10],
        "max_queue_depth_seen": max_depth_seen[0],
        "health_polls": len(health_snapshots),
        "query_seconds": {
            "p50": query_q.percentile(50.0),
            "p99": query_q.percentile(99.0),
        },
        "final_health": final_health,
    }

    if not skip_full and final is not None and acked:
        # Union in the daemon's internal order: base, then acked batches
        # in commit (seq) order — the order ``dump`` reports.
        acked_sorted = sorted(acked, key=lambda t: t[0])
        union = PointSet(
            ids=np.concatenate(
                [np.asarray(base.ids, dtype=np.int64)]
                + [ids for _, _, ids in acked_sorted]
            ),
            coords=np.vstack(
                [base.coords] + [coords for _, coords, _ in acked_sorted]
            ),
        )
        full = run_pipeline(union, config, transport=transport)
        report = labels_equivalent(
            union,
            eps,
            full.labels,
            full.core_mask,
            np.asarray(final["labels"], dtype=np.int64),
            np.asarray(final["core"], dtype=bool),
        )
        result.update(
            {
                "equivalence": report.summary(),
                "equivalence_ok": bool(report.ok),
            }
        )
    return result


def write_bench(results: list[dict], config: dict, out_path: str | Path) -> dict:
    payload = {"bench": "serve", "config": config, "sizes": results}
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload
