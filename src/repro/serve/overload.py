"""Overload protection primitives for the serve daemon.

The daemon (:mod:`repro.serve.server`) stays available under abuse by
composing three small, independently testable mechanisms:

* **admission control** — bounded ingest queue and connection cap; excess
  load is *shed* with a structured retryable response instead of queued
  (see :class:`AdmissionController`);
* a **circuit breaker** — consecutive *infrastructure* ingest failures
  (transport death, respawn budget exhausted, poison batches) trip the
  daemon into degraded mode: ingests are rejected fast, queries keep
  serving the last committed snapshot, and a half-open probe restores
  service once the backend recovers (see :class:`CircuitBreaker`);
* **deadlines + cancellation** — per-op budgets backed by
  :class:`~repro.resilience.CancelToken`, owned by the server itself.

Everything here is thread-safe: admission decisions happen on the event
loop while ingests execute on a worker thread.
"""

from __future__ import annotations

import threading
import time

__all__ = ["AdmissionController", "CircuitBreaker"]


class CircuitBreaker:
    """Classic closed / open / half-open breaker over ingest failures.

    Only *infrastructure* failures count toward the trip threshold — the
    caller decides what qualifies (the daemon counts transport-family
    errors and unexpected exceptions, never client mistakes like a
    malformed batch, and never cancellations).  While **open**, ingests
    are rejected immediately with a ``degraded`` response; after
    ``reset_after_s`` the breaker lets exactly one probe ingest through
    (**half-open**) — its success closes the breaker, its failure
    re-opens it for another full reset window.

    Parameters
    ----------
    failure_threshold:
        Consecutive counted failures that trip the breaker (>= 1).
    reset_after_s:
        Seconds the breaker stays open before allowing a probe.
    clock:
        Monotonic time source, overridable in tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        #: Total times the breaker tripped open (telemetry).
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when the reset
        window has elapsed (read-only peek; does not claim the probe)."""
        with self._lock:
            return self._advance_locked()

    def _advance_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May an ingest proceed right now?

        Closed: always.  Open: no.  Half-open: exactly one caller gets
        True (the probe); everyone else is rejected until the probe
        reports back via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._advance_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def retry_after_s(self) -> float:
        """Seconds until the breaker would next admit a probe (0 when
        it already would)."""
        with self._lock:
            if self._state != self.OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self.reset_after_s - (self._clock() - self._opened_at)
            )

    def abandon_probe(self) -> None:
        """An :meth:`allow`-ed caller never actually ran the ingest
        (shed, validation error, deadline before start): free the
        half-open probe slot without judging the backend."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probe_in_flight = False

    def record_success(self) -> None:
        """An admitted ingest committed: close the breaker."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """An admitted ingest failed for an infrastructure reason."""
        with self._lock:
            self._advance_locked()
            if self._state == self.HALF_OPEN:
                # Failed probe: straight back to open, fresh window.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.trips += 1
                return
            self._consecutive_failures += 1
            if (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def snapshot(self) -> dict:
        """State for the ``health`` op / metrics gauge."""
        with self._lock:
            state = self._advance_locked()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
            }


class AdmissionController:
    """Bounded ingest-queue depth and connection cap.

    Tracks how many ingests are queued-or-running; :meth:`try_acquire`
    fails (shed) once ``max_queued`` are in the system.  Connection slots
    work the same way with ``max_connections``.  Both are plain counters
    under one lock — the *waiting* itself is the server's asyncio lock;
    this class only answers "is there room to wait at all?".
    """

    def __init__(self, max_queued: int, max_connections: int) -> None:
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.max_queued = int(max_queued)
        self.max_connections = int(max_connections)
        self._lock = threading.Lock()
        self._queued = 0
        self._connections = 0
        #: Total ingests shed for queue-full (telemetry).
        self.shed_ingests = 0
        #: Total connections refused for cap (telemetry).
        self.shed_connections = 0

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def connections(self) -> int:
        with self._lock:
            return self._connections

    def try_acquire(self) -> bool:
        """Claim an ingest slot; False = queue full, shed the request."""
        with self._lock:
            if self._queued >= self.max_queued:
                self.shed_ingests += 1
                return False
            self._queued += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._queued = max(0, self._queued - 1)

    def try_connect(self) -> bool:
        """Claim a connection slot; False = at cap, refuse the client."""
        with self._lock:
            if self._connections >= self.max_connections:
                self.shed_connections += 1
                return False
            self._connections += 1
            return True

    def disconnect(self) -> None:
        with self._lock:
            self._connections = max(0, self._connections - 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queued_ingests": self._queued,
                "max_queued_ingests": self.max_queued,
                "connections": self._connections,
                "max_connections": self.max_connections,
                "shed_ingests": self.shed_ingests,
                "shed_connections": self.shed_connections,
            }
