"""Per-leaf cluster-output checkpoints (spill files).

A clustering leaf is the expensive unit of work in Mr. Scan — re-running
one after a crash wastes a full GPU DBSCAN pass.  The store persists each
leaf's output the moment it is produced, in the spirit of the
:mod:`repro.io.partition_files` spill format: one binary artifact per
leaf plus a tiny JSON manifest with an integrity digest.

Layout under the checkpoint root::

    leaf_0007.npz        labels / core_mask / n_owned arrays + pickled
                         summary/stats blob (as a uint8 array)
    leaf_0007.json       {"leaf_id", "n_points", "digest"}

Writes are atomic (temp file + rename, manifest last) so a process that
dies *mid-checkpoint* leaves no manifest and the leaf simply re-runs.  A
manifest whose digest does not match the artifact raises
:class:`~repro.errors.CheckpointError` on load; callers treat that like a
cache miss and recompute.  :meth:`LeafCheckpointStore.load` therefore
guarantees the recovered output is byte-identical to what was saved —
the "recovered equals fresh" invariant is checked at save time via the
digest and can be re-asserted with :meth:`verify`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import CheckpointError

__all__ = ["CheckpointedLeaf", "LeafCheckpointStore", "CORRUPT_CHECKPOINT_ERRORS"]

logger = logging.getLogger(__name__)

#: Everything a truncated/garbled artifact can raise on load.  ``np.load``
#: on a torn npz raises :class:`zipfile.BadZipFile` (npz *is* a zip) or
#: ``EOFError``, and a damaged pickle blob raises ``UnpicklingError`` —
#: none of which are ``OSError``/``ValueError``, so the obvious catch
#: tuple lets corruption escape as a crash instead of a cache miss.
CORRUPT_CHECKPOINT_ERRORS: tuple[type[BaseException], ...] = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    json.JSONDecodeError,
    zipfile.BadZipFile,
    pickle.UnpicklingError,
)


@dataclass
class CheckpointedLeaf:
    """One recovered leaf output."""

    leaf_id: int
    labels: np.ndarray
    core_mask: np.ndarray
    n_owned: int
    summary: Any
    stats: Any
    #: Cluster engine that produced the output (``None`` on checkpoints
    #: written before engines were recorded).
    engine: str | None = None


def _digest(labels: np.ndarray, core_mask: np.ndarray, blob: bytes) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(labels).tobytes())
    h.update(np.ascontiguousarray(core_mask).tobytes())
    h.update(blob)
    return h.hexdigest()


class LeafCheckpointStore:
    """Persist and recover per-leaf clustering outputs.

    The store is safe to open from several worker processes at once: each
    leaf writes only its own pair of files, and writes go through a
    PID-suffixed temp file renamed into place.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Same-process counters (informational; workers in other
        #: processes keep their own).
        self.hits = 0
        self.misses = 0

    def _data_path(self, leaf_id: int) -> Path:
        return self.root / f"leaf_{leaf_id:04d}.npz"

    def _meta_path(self, leaf_id: int) -> Path:
        return self.root / f"leaf_{leaf_id:04d}.json"

    def has(self, leaf_id: int) -> bool:
        return self._meta_path(leaf_id).exists() and self._data_path(leaf_id).exists()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def save(
        self,
        leaf_id: int,
        *,
        labels: np.ndarray,
        core_mask: np.ndarray,
        n_owned: int,
        summary: Any,
        stats: Any,
        engine: str | None = None,
    ) -> Path:
        """Persist one leaf's output atomically; returns the data path.

        ``engine`` records which cluster engine produced the output so a
        later run under a different engine refuses to replay it (see
        :meth:`load`).
        """
        blob = pickle.dumps({"summary": summary, "stats": stats})
        data_path = self._data_path(leaf_id)
        meta_path = self._meta_path(leaf_id)
        tmp = data_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    labels=np.ascontiguousarray(labels),
                    core_mask=np.ascontiguousarray(core_mask),
                    n_owned=np.int64(n_owned),
                    blob=np.frombuffer(blob, dtype=np.uint8),
                )
            os.replace(tmp, data_path)
        finally:
            if tmp.exists():
                tmp.unlink()
        manifest = {
            "leaf_id": int(leaf_id),
            "n_points": int(len(labels)),
            "digest": _digest(labels, core_mask, blob),
            "engine": engine,
        }
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        meta_tmp.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
        os.replace(meta_tmp, meta_path)
        return data_path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def load(
        self, leaf_id: int, *, expected_engine: str | None = None
    ) -> CheckpointedLeaf:
        """Recover one leaf's output, verifying the manifest digest.

        With ``expected_engine`` set, a checkpoint recorded under any
        other engine — including legacy checkpoints that recorded none —
        raises :class:`~repro.errors.CheckpointError`, which callers
        treat as a miss: engines are label-identical, but replaying a
        foreign engine's output would silently skip the engine this run
        was asked to exercise.
        """
        meta_path = self._meta_path(leaf_id)
        data_path = self._data_path(leaf_id)
        if not (meta_path.exists() and data_path.exists()):
            self.misses += 1
            raise CheckpointError(f"no checkpoint for leaf {leaf_id} under {self.root}")
        try:
            manifest = json.loads(meta_path.read_text(encoding="utf-8"))
            if expected_engine is not None and manifest.get("engine") != expected_engine:
                self.misses += 1
                logger.warning(
                    "checkpoint for leaf %d was produced by engine %r, run wants %r; "
                    "re-clustering",
                    leaf_id,
                    manifest.get("engine"),
                    expected_engine,
                )
                raise CheckpointError(
                    f"checkpoint for leaf {leaf_id} was produced by engine "
                    f"{manifest.get('engine')!r}, not {expected_engine!r}"
                )
            with np.load(data_path) as npz:
                labels = npz["labels"]
                core_mask = npz["core_mask"]
                n_owned = int(npz["n_owned"])
                blob = npz["blob"].tobytes()
            if manifest.get("digest") != _digest(labels, core_mask, blob):
                self.misses += 1
                logger.warning(
                    "checkpoint digest mismatch for leaf %d under %s; re-clustering",
                    leaf_id,
                    self.root,
                )
                raise CheckpointError(
                    f"checkpoint digest mismatch for leaf {leaf_id} (corrupt spill file)"
                )
            payload = pickle.loads(blob)
        except CheckpointError:
            raise
        except CORRUPT_CHECKPOINT_ERRORS as exc:
            self.misses += 1
            logger.warning(
                "unreadable checkpoint for leaf %d under %s (%s: %s); re-clustering",
                leaf_id,
                self.root,
                type(exc).__name__,
                exc,
            )
            raise CheckpointError(f"unreadable checkpoint for leaf {leaf_id}: {exc}") from exc
        self.hits += 1
        return CheckpointedLeaf(
            leaf_id=int(manifest["leaf_id"]),
            labels=labels,
            core_mask=core_mask,
            n_owned=n_owned,
            summary=payload["summary"],
            stats=payload["stats"],
            engine=manifest.get("engine"),
        )

    def verify(self, leaf_id: int, *, labels: np.ndarray, core_mask: np.ndarray) -> bool:
        """Invariant check: does the stored output equal a fresh one?"""
        recovered = self.load(leaf_id)
        return bool(
            np.array_equal(recovered.labels, labels)
            and np.array_equal(recovered.core_mask, core_mask)
        )

    def invalidate(self, leaf_id: int) -> bool:
        """Discard one leaf's checkpoint (e.g. its partition went dirty).

        Meta is removed first so a crash between the two unlinks leaves
        the store in the conservative "no checkpoint" state rather than
        a data file that a later manifest could mis-adopt.  Returns
        whether a checkpoint existed.
        """
        existed = self.has(leaf_id)
        for path in (self._meta_path(leaf_id), self._data_path(leaf_id)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return existed

    def clear(self) -> int:
        """Delete all checkpoints; returns the number of leaves cleared."""
        n = 0
        for meta in sorted(self.root.glob("leaf_*.json")):
            meta.unlink()
            n += 1
        for data in sorted(self.root.glob("leaf_*.npz")):
            data.unlink()
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("leaf_*.json"))
