"""Chaos-testing harness: run the pipeline under fault plans and check
that recovery preserves the clustering.

The determinism contract of the resilience layer — retries re-execute
identical work, failover re-hosts but never re-routes, OOM recovery
re-chunks device accounting without touching the math — means *any*
recoverable fault schedule must yield labels byte-identical to a
fault-free run.  :class:`ChaosRunner` turns that invariant into an
executable check:

>>> runner = ChaosRunner(points, config)
>>> outcome = runner.run_plan(FaultPlan.seeded(7, nodes=range(1, 7)))
>>> assert outcome.completed and outcome.labels_match

``run_seeds`` sweeps a list of seeds (the CI chaos job's seed matrix) and
``report`` renders the outcomes as a table.  A run that aborts with
:class:`~repro.errors.RetryExhaustedError` is *not* a failed check by
itself (a plan can legitimately exceed every budget — e.g. a permanent
root crash); an abort with any other exception, or a completed run whose
labels differ, is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import MrScanError, RetryExhaustedError
from .faults import FaultEvent, FaultPlan

__all__ = ["ChaosOutcome", "ChaosRunner"]


@dataclass
class ChaosOutcome:
    """What one chaos run did and whether the invariant held."""

    plan: FaultPlan
    completed: bool
    labels_match: bool
    error: str = ""
    events: list[FaultEvent] = field(default_factory=list)
    fault_summary: dict[str, Any] = field(default_factory=dict)
    #: Invariant-checking activity of the chaos run (a
    #: ``ValidationReport.as_dict()``) when ``config.validate`` != "off".
    validation: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run either recovered correctly or aborted with a
        clean retry-exhaustion (budgets can legitimately run out)."""
        if self.completed:
            return self.labels_match
        return self.error.startswith("RetryExhaustedError")

    def describe(self) -> str:
        state = (
            "recovered" if self.completed and self.labels_match
            else "WRONG LABELS" if self.completed
            else f"aborted ({self.error.split(':', 1)[0]})"
        )
        return f"seed={self.plan.seed} faults={len(self.plan)} -> {state}"


class ChaosRunner:
    """Run the pipeline under injected faults and verify the output.

    The fault-free baseline is computed once (lazily) per runner; every
    chaos run is compared against it with exact array equality.

    Parameters
    ----------
    points, config:
        The workload — any faults already on ``config.fault_plan`` are
        stripped for the baseline and replaced per chaos run.
    pipeline:
        Override for the pipeline callable (tests inject counters);
        signature ``pipeline(points, config)`` returning an object with
        ``.labels`` and optionally ``.faults`` / ``.fault_summary``.
    """

    def __init__(
        self,
        points,
        config,
        *,
        pipeline: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        if pipeline is None:
            from ..core.pipeline import run_pipeline

            pipeline = run_pipeline
        self._pipeline = pipeline
        self.points = points
        self.config = replace(config, fault_plan=None)
        self._baseline_labels: np.ndarray | None = None

    @property
    def baseline_labels(self) -> np.ndarray:
        if self._baseline_labels is None:
            result = self._pipeline(self.points, self.config)
            self._baseline_labels = np.asarray(result.labels).copy()
        return self._baseline_labels

    def run_plan(self, plan: FaultPlan) -> ChaosOutcome:
        """One chaos run: inject ``plan``, compare labels to baseline."""
        baseline = self.baseline_labels  # materialize before the chaos run
        config = replace(self.config, fault_plan=plan)
        try:
            result = self._pipeline(self.points, config)
        except RetryExhaustedError as exc:
            return ChaosOutcome(
                plan=plan, completed=False, labels_match=False,
                error=f"RetryExhaustedError: {exc}",
            )
        except MrScanError as exc:
            return ChaosOutcome(
                plan=plan, completed=False, labels_match=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        labels = np.asarray(result.labels)
        report = getattr(result, "validation", None)
        return ChaosOutcome(
            plan=plan,
            completed=True,
            labels_match=bool(np.array_equal(labels, baseline)),
            events=list(getattr(result, "faults", [])),
            fault_summary=dict(getattr(result, "fault_summary", {}) or {}),
            validation=report.as_dict() if report is not None else {},
        )

    def run_seeds(
        self,
        seeds: Sequence[int],
        nodes: Sequence[int],
        **seeded_kwargs,
    ) -> list[ChaosOutcome]:
        """Sweep ``FaultPlan.seeded(seed, nodes, **seeded_kwargs)``."""
        return [
            self.run_plan(FaultPlan.seeded(seed, nodes, **seeded_kwargs))
            for seed in seeds
        ]

    @staticmethod
    def report(outcomes: Sequence[ChaosOutcome]) -> str:
        """Human-readable sweep summary (one line per run + verdict)."""
        lines = [o.describe() for o in outcomes]
        n_bad = sum(1 for o in outcomes if not o.ok)
        lines.append(
            f"{len(outcomes)} chaos run(s), "
            + ("all invariants held" if n_bad == 0 else f"{n_bad} FAILED")
        )
        return "\n".join(lines)
