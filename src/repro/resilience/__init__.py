"""Fault tolerance for the simulated MRNet deployment.

At the paper's scale (8,192 GPGPU nodes on Titan, §5) node failure is
routine, and a density-based clustering run that loses a leaf loses an
entire partition's GPU pass.  This package gives the reproduction the
recovery machinery such a deployment needs:

* :mod:`~repro.resilience.faults` — a structured, serializable fault
  model (:class:`FaultPlan` of typed :class:`FaultSpec`\\ s; crash /
  straggler-slowdown / device-OOM), the :class:`FaultInjector` poll
  point, and the capped :class:`FaultLog` of observed
  :class:`FaultEvent`\\ s;
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (exponential
  backoff) and :class:`ResiliencePolicy` (retries + per-attempt
  deadlines + failover) consumed by :class:`repro.mrnet.Network`;
* :mod:`~repro.resilience.checkpoint` — per-leaf spill-file checkpoints
  (:class:`LeafCheckpointStore`) so a crashed leaf resumes from its
  saved output instead of re-running the GPU pass;
* :mod:`~repro.resilience.chaos` — :class:`ChaosRunner`, which runs the
  pipeline under seeded fault plans and asserts the recovered labels are
  byte-identical to a fault-free run (imported lazily: it pulls in the
  full pipeline).
"""

from .cancel import CancelToken
from .checkpoint import CheckpointedLeaf, LeafCheckpointStore
from .faults import (
    CRASH_POINTS,
    FAULT_KINDS,
    NET_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultSpec,
    as_injector,
)
from .policy import ResiliencePolicy, RetryPolicy

__all__ = [
    "CancelToken",
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "CRASH_POINTS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "FaultLog",
    "as_injector",
    "RetryPolicy",
    "ResiliencePolicy",
    "CheckpointedLeaf",
    "LeafCheckpointStore",
    "ChaosOutcome",
    "ChaosRunner",
]


def __getattr__(name: str):
    # ChaosRunner imports the pipeline — load it lazily to keep
    # ``repro.resilience`` import-light for the Network/config layers.
    if name in ("ChaosOutcome", "ChaosRunner"):
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
