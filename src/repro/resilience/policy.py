"""Retry, backoff, timeout, and failover policy for tree-node work.

A :class:`ResiliencePolicy` travels with a :class:`~repro.mrnet.Network`
and governs every collective phase:

* **retries** — a failed node attempt is re-run up to ``max_retries``
  times, sleeping an exponential backoff between rounds (the stand-in for
  MRNet tearing down and restarting a tool process);
* **deadlines** — ``leaf_timeout`` bounds one attempt's work; a straggler
  exceeding it fails that attempt with
  :class:`~repro.errors.LeafTimeoutError` instead of blocking the
  pipeline forever (preemptively under ``ProcessTransport``,
  cooperatively — detected after the work returns — under the in-process
  ``LocalTransport``);
* **failover** — a node whose retry budget is exhausted is declared dead:
  a leaf's task is re-hosted on the least-loaded surviving sibling
  (subject to a device-capacity check), an internal node's filter work is
  adopted by its nearest live ancestor.  Routing and payloads never
  change — only which process *executes* the work — so recovery is
  exactly-once per partition and the clustering output is invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["RetryPolicy", "ResiliencePolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base * factor**round``, capped."""

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff seconds must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigError("backoff_factor must be >= 1")

    def backoff_seconds(self, round_index: int) -> float:
        """Sleep before retry round ``round_index`` (0-based)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** round_index)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything a Network needs to survive faults.

    ``failover`` enables re-hosting after retry exhaustion;
    ``max_failovers`` bounds how many times one task may move (defaults
    to every other node once).  ``leaf_timeout`` is seconds per attempt,
    ``None`` disables deadlines.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    leaf_timeout: float | None = None
    failover: bool = True
    max_failovers: int | None = None

    def __post_init__(self) -> None:
        if self.leaf_timeout is not None and self.leaf_timeout <= 0:
            raise ConfigError("leaf_timeout must be positive (or None)")
        if self.max_failovers is not None and self.max_failovers < 0:
            raise ConfigError("max_failovers must be >= 0")

    @classmethod
    def fail_fast(cls, retries: int = 0) -> "ResiliencePolicy":
        """The seed-era contract: ``retries`` re-polls, no sleeping, no
        failover — a crash beyond the budget aborts the phase."""
        return cls(
            retry=RetryPolicy(max_retries=retries, backoff_base=0.0),
            failover=False,
        )
