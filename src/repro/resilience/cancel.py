"""Cooperative cancellation: :class:`CancelToken`.

A token is created by whoever owns an operation's lifetime (the serve
daemon creates one per ingest, carrying the op's deadline) and threaded
down through :func:`repro.core.pipeline.cluster_merge_sweep` →
:meth:`repro.mrnet.Network._run_tasks` → the transports' dispatch loops.
Work polls :meth:`CancelToken.check` at its natural yield points — round
boundaries, result-poll iterations, between sequential tasks — and
unwinds with :class:`~repro.errors.OperationCancelledError` (or its
:class:`~repro.errors.DeadlineExceededError` subclass when the deadline,
not an explicit :meth:`cancel`, fired).

Cancellation is *cooperative*: in-flight worker-side computation is not
preempted, but its result is abandoned — dispatch loops stop waiting,
the driver unwinds before any state is committed, and pool workers
finish into the void.  That is exactly the contract the serve daemon's
rollback discipline needs: an expired or client-abandoned ingest stops
consuming the worker pool *now*, while the resident labels and the
write-ahead ingest log stay consistent (the transaction never reaches
its commit step).

Thread-safe: ``cancel()`` may be called from any thread (the asyncio
event loop cancels tokens owned by executor threads).
"""

from __future__ import annotations

import threading
import time

from ..errors import DeadlineExceededError, OperationCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """One operation's cancellation scope.

    Parameters
    ----------
    deadline_s:
        Optional budget in seconds from *now*; once it elapses the token
        reads as cancelled and :meth:`check` raises
        :class:`~repro.errors.DeadlineExceededError`.  ``None`` means no
        deadline — only an explicit :meth:`cancel` fires.
    """

    __slots__ = ("_event", "_deadline", "_reason", "_lock")

    def __init__(self, deadline_s: float | None = None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            # A non-positive budget is already expired; normalise so
            # ``remaining()``/``expired`` behave instead of erroring.
            deadline_s = 0.0
        self._event = threading.Event()
        self._deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self._reason: str | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    @property
    def cancelled(self) -> bool:
        """True once explicitly cancelled *or* past the deadline."""
        return self._event.is_set() or self.expired

    @property
    def reason(self) -> str:
        """Why the token is cancelled (empty string while live)."""
        if self._reason is not None:
            return self._reason
        if self.expired:
            return "deadline exceeded"
        return ""

    def remaining(self) -> float | None:
        """Seconds left on the deadline (``None`` = unbounded, ``0.0`` =
        expired).  Useful as a downstream wait timeout."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel explicitly (idempotent; first reason wins)."""
        with self._lock:
            if self._reason is None and not self.expired:
                self._reason = reason
        self._event.set()

    def check(self) -> None:
        """Raise if cancelled; the cooperative poll point.

        Raises :class:`~repro.errors.DeadlineExceededError` when the
        deadline fired, :class:`~repro.errors.OperationCancelledError`
        for an explicit cancel.
        """
        if self._event.is_set() and self._reason is not None:
            raise OperationCancelledError(f"operation cancelled: {self._reason}")
        if self.expired:
            raise DeadlineExceededError("operation deadline exceeded")
        if self._event.is_set():  # cancelled with no reason recorded
            raise OperationCancelledError("operation cancelled")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "live"
        rem = self.remaining()
        budget = "" if rem is None else f", remaining={rem:.3f}s"
        return f"CancelToken({state}{budget})"
