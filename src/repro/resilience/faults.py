"""Structured fault model: what fails, where, when, and how.

Titan-scale runs (8,192 GPGPU nodes, §5) make node failure a statistical
certainty, and MRNet's answer is restarting tool processes.  The seed
reproduction modelled that with a bare ``fault_injector`` callable and a
flat retry count; this module replaces it with a *plan* of typed faults so
chaos runs are reproducible and serializable:

* :class:`FaultSpec` — one fault: ``(node, phase, attempt)`` plus a kind
  (``crash``, ``slowdown``, ``oom``, ``kill``), a crash point
  (``before``/``after`` the node's work — "after" models a process that
  dies having completed and checkpointed its work but before delivering
  the result), and an optional ``permanent`` flag (the node is dead for
  good and must be failed over).  ``kill`` is the hard variant of
  ``crash``: inside a worker process it SIGKILLs the process outright
  (exercising the transports' self-healing pool respawn), while under the
  in-process local transport — where a real SIGKILL would take the driver
  down — it downgrades to a no-op, so the same plan is safe everywhere.
* :class:`FaultPlan` — an ordered set of specs, JSON round-trippable, with
  a :meth:`FaultPlan.seeded` generator for reproducible random chaos.
* :class:`FaultInjector` — the poll point the :class:`~repro.mrnet.Network`
  consults per ``(node, phase, attempt)``.  Legacy bare callables
  ``(node, phase) -> bool`` are adapted transparently.
* :class:`FaultEvent` / :class:`FaultLog` — what actually happened during
  a run: every observed fault and the recovery action taken, in a capped
  log whose per-kind totals are never lost to the cap.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ConfigError

__all__ = [
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "CRASH_POINTS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "FaultLog",
    "as_injector",
]

#: Supported fault kinds: a process crash, a straggler delay, a device
#: OOM, a hard SIGKILL of the hosting worker process, and the network
#: kinds — a severed connection, a lost (dropped) task send, and a slow
#: link delaying the send.  The network kinds are injected at the TCP
#: transport's framing layer (:mod:`repro.mrnet.tcp`) and are no-ops
#: under the single-host transports, so one plan is safe everywhere.
FAULT_KINDS: tuple[str, ...] = (
    "crash", "slowdown", "oom", "kill", "disconnect", "drop", "netdelay",
)
#: The subset injected at the network boundary rather than in-band.
NET_FAULT_KINDS: tuple[str, ...] = ("disconnect", "drop", "netdelay")
#: When a crash fires relative to the node's work.
CRASH_POINTS: tuple[str, ...] = ("before", "after")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at ``(node, phase, attempt)``.

    ``phase`` matches either the collective kind (``map``/``reduce``/
    ``multicast``), the operation name the pipeline uses (``cluster``,
    ``merge``, ``sweep``, ``partition.histogram``, ...), or ``*`` for any.
    ``attempt`` is 0-based; a spec fires on exactly that attempt unless
    ``permanent`` is set, in which case it fires on every attempt from
    ``attempt`` on (a dead node — recoverable only by failover).
    """

    node: int
    phase: str = "*"
    attempt: int = 0
    kind: str = "crash"
    point: str = "before"  # crash only: before/after the node's work
    delay_seconds: float = 0.0  # slowdown only
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r} (have {FAULT_KINDS})")
        if self.point not in CRASH_POINTS:
            raise ConfigError(f"crash point must be one of {CRASH_POINTS}, got {self.point!r}")
        if self.attempt < 0:
            raise ConfigError("fault attempt must be >= 0")
        if self.delay_seconds < 0:
            raise ConfigError("delay_seconds must be >= 0")
        if self.kind == "slowdown" and self.delay_seconds == 0:
            raise ConfigError("slowdown faults need delay_seconds > 0")
        if self.kind == "netdelay" and self.delay_seconds == 0:
            raise ConfigError("netdelay faults need delay_seconds > 0")

    def matches(self, node: int, phase: str, name: str, attempt: int) -> bool:
        if node != self.node:
            return False
        if self.phase not in ("*", phase, name):
            return False
        if self.permanent:
            return attempt >= self.attempt
        return attempt == self.attempt

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSpec":
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serializable collection of :class:`FaultSpec`.

    The first matching spec wins at each poll.  ``seed`` records how a
    random plan was generated (documentation only — the specs themselves
    are fully materialized, so a loaded plan replays identically).
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def lookup(self, node: int, phase: str, name: str, attempt: int) -> FaultSpec | None:
        for spec in self.faults:
            if spec.matches(node, phase, name, attempt):
                return spec
        return None

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [f.as_dict() for f in self.faults]},
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in payload.get("faults", ())),
            seed=payload.get("seed"),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    @classmethod
    def seeded(
        cls,
        seed: int,
        nodes: Sequence[int],
        *,
        phases: Sequence[str] = ("map", "reduce", "multicast"),
        n_faults: int = 4,
        kinds: Sequence[str] = ("crash", "slowdown"),
        max_attempt: int = 1,
        max_delay: float = 0.02,
        permanent_fraction: float = 0.0,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same plan, every time."""
        import numpy as np

        if not nodes:
            raise ConfigError("seeded fault plan needs at least one candidate node")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for _ in range(int(n_faults)):
            kind = str(kinds[int(rng.integers(len(kinds)))])
            permanent = kind == "crash" and bool(rng.random() < permanent_fraction)
            specs.append(
                FaultSpec(
                    node=int(nodes[int(rng.integers(len(nodes)))]),
                    phase=str(phases[int(rng.integers(len(phases)))]),
                    attempt=0 if permanent else int(rng.integers(max_attempt + 1)),
                    kind=kind,
                    point=str(CRASH_POINTS[int(rng.integers(2))]) if kind == "crash" else "before",
                    delay_seconds=(
                        float(rng.uniform(0.001, max_delay))
                        if kind in ("slowdown", "netdelay")
                        else 0.0
                    ),
                    permanent=permanent,
                )
            )
        return cls(faults=tuple(specs), seed=int(seed))

    def describe(self) -> str:
        by_kind: dict[str, int] = {}
        for f in self.faults:
            by_kind[f.kind] = by_kind.get(f.kind, 0) + 1
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())) or "empty"
        return f"FaultPlan(seed={self.seed}, {len(self.faults)} fault(s): {kinds})"


class FaultInjector:
    """The Network's poll point: which fault (if any) hits this attempt.

    Wraps a :class:`FaultPlan`; :meth:`check` is pure with respect to the
    plan (attempt indices are supplied by the caller's retry loop), so one
    injector can safely serve both MRNet trees of a run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def check(self, node: int, phase: str, name: str, attempt: int) -> FaultSpec | None:
        return self.plan.lookup(node, phase, name, attempt)


class _LegacyInjector(FaultInjector):
    """Adapter for the seed-era bare callable ``(node, phase) -> bool``.

    The callable keeps its own attempt state (e.g. "crash only the first
    poll"); every True poll is presented to the Network as a pre-work
    crash, which reproduces the old `_poll_faults` observable behaviour:
    crashed attempts never run the node's work, and the work runs exactly
    once after the final successful poll.
    """

    def __init__(self, fn: Callable[[int, str], bool]) -> None:
        super().__init__(FaultPlan())
        self._fn = fn

    def check(self, node: int, phase: str, name: str, attempt: int) -> FaultSpec | None:
        if self._fn(node, phase):
            return FaultSpec(node=node, phase=phase, kind="crash", attempt=attempt)
        return None


def as_injector(obj: Any) -> FaultInjector | None:
    """Coerce None / FaultInjector / FaultPlan / legacy callable."""
    if obj is None or isinstance(obj, FaultInjector):
        return obj
    if isinstance(obj, FaultPlan):
        return FaultInjector(obj)
    if callable(obj):
        return _LegacyInjector(obj)
    raise ConfigError(
        f"fault_injector must be a FaultPlan, FaultInjector, or callable, got {type(obj)!r}"
    )


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault (or recovery action) during a run.

    ``action`` is what the resilience layer did about it: ``retry`` (the
    attempt will be re-run after backoff), ``failover`` (the node was
    declared dead and its work re-hosted), ``recovered`` (an OOM retried
    with a split partition), or ``abort`` (budgets exhausted, the phase
    raised).
    """

    node: int
    phase: str
    name: str
    attempt: int
    kind: str
    action: str
    detail: str = ""


class FaultLog:
    """A capped fault-event log whose aggregate counts are exact.

    The per-event list is bounded by ``cap`` (oldest events drop first) so
    a pathological chaos run cannot grow memory without bound, but the
    by-kind and by-action counters keep counting past the cap.
    """

    def __init__(self, cap: int = 1000) -> None:
        if cap < 1:
            raise ConfigError("fault log cap must be >= 1")
        self.cap = int(cap)
        self._events: list[FaultEvent] = []
        self.total = 0
        self.dropped = 0
        self.by_kind: dict[str, int] = {}
        self.by_action: dict[str, int] = {}

    def append(self, event: FaultEvent) -> None:
        self.total += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        self.by_action[event.action] = self.by_action.get(event.action, 0) + 1
        self._events.append(event)
        if len(self._events) > self.cap:
            n_drop = len(self._events) - self.cap
            del self._events[:n_drop]
            self.dropped += n_drop

    def extend(self, events: Iterable[FaultEvent]) -> None:
        for event in events:
            self.append(event)

    @property
    def events(self) -> list[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __getitem__(self, i: int) -> FaultEvent:
        return self._events[i]

    def summary(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "dropped": self.dropped,
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_action": dict(sorted(self.by_action.items())),
        }
