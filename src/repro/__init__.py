"""Mr. Scan reproduction: extreme-scale density-based clustering (SC'13).

Public API
----------
The one-call entry point is :func:`repro.mrscan`, which runs the full
partition → cluster → merge → sweep pipeline in-process::

    import repro
    points = repro.data.generate_twitter(100_000, seed=7)
    result = repro.mrscan(points, eps=0.1, minpts=40, n_leaves=8)
    result.labels          # global cluster id per point (-1 = noise)
    result.timings         # per-phase wall + modelled seconds

Finer-grained control lives in the subpackages:

==================  ====================================================
``repro.core``      the pipeline, its configuration and result types
``repro.dbscan``    exact reference DBSCAN + spatial indexes
``repro.gpu``       simulated GPGPU device, CUDA-DClust, dense box
``repro.partition`` Eps-grid partitioner with shadow regions
``repro.mrnet``     tree-based multicast/reduction process network
``repro.merge``     representative points + distributed merge rules
``repro.data``      synthetic Twitter / SDSS / shape generators
``repro.quality``   the DBDC quality metric (Fig 11)
``repro.perf``      Titan-calibrated performance model (Figs 8-10,12,13)
``repro.telemetry`` spans, metrics, Chrome-trace/JSONL exporters
``repro.resilience`` fault plans, retries/failover, checkpoints, chaos
==================  ====================================================
"""

from . import data, dbscan, io  # noqa: F401  (re-exported subpackages)
from .errors import MrScanError
from .points import NOISE, PointSet

__version__ = "1.0.0"

__all__ = [
    "NOISE",
    "PointSet",
    "MrScanError",
    "data",
    "dbscan",
    "io",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports for the heavier subpackages so `import repro` stays
    # cheap and so subpackages under construction do not break the base
    # API.  Resolved once, then cached on the module.
    import importlib

    lazy = {
        "core",
        "gpu",
        "partition",
        "mrnet",
        "merge",
        "sweep",
        "quality",
        "perf",
        "telemetry",
        "resilience",
    }
    if name in lazy:
        mod = importlib.import_module(f".{name}", __name__)
        globals()[name] = mod
        return mod
    if name == "Telemetry":
        from .telemetry import Telemetry as cls

        globals()["Telemetry"] = cls
        return cls
    if name == "mrscan":
        from .core.pipeline import mrscan as fn

        globals()["mrscan"] = fn
        return fn
    if name == "MrScanConfig":
        from .core.config import MrScanConfig as cls

        globals()["MrScanConfig"] = cls
        return cls
    if name == "MrScanResult":
        from .core.result import MrScanResult as cls

        globals()["MrScanResult"] = cls
        return cls
    if name == "MrScanClusterer":
        from .estimator import MrScanClusterer as cls

        globals()["MrScanClusterer"] = cls
        return cls
    if name == "analysis":
        import importlib

        mod = importlib.import_module(".analysis", __name__)
        globals()["analysis"] = mod
        return mod
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
