"""Point-set container shared by every Mr. Scan subsystem.

The paper's input format is a single binary or text file where each point
carries a unique ID, coordinates, and an optional weight (§3).  In memory we
keep those three columns as separate numpy arrays so kernels can operate on
contiguous coordinate data without dragging IDs/weights through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import DataValidationError, FormatError

__all__ = ["PointSet", "NOISE", "UNCLASSIFIED"]

#: Label value for noise points in every labelling produced by this package.
NOISE: int = -1

#: Label value for points not yet classified (internal to algorithms).
UNCLASSIFIED: int = -2


@dataclass
class PointSet:
    """A set of 2-D points with IDs and optional weights.

    Parameters
    ----------
    ids:
        ``(n,)`` int64 array of globally unique point IDs.
    coords:
        ``(n, 2)`` float64 array of coordinates.
    weights:
        ``(n,)`` float64 array of per-point weights; defaults to ones.

    The class validates shape agreement and exposes convenience geometry
    accessors used by the partitioner and the spatial indexes.
    """

    ids: np.ndarray
    coords: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        self.coords = np.ascontiguousarray(self.coords, dtype=np.float64)
        if self.coords.ndim != 2 or self.coords.shape[1] != 2:
            raise FormatError(
                f"coords must have shape (n, 2), got {self.coords.shape}"
            )
        if self.ids.shape[0] != self.coords.shape[0]:
            raise FormatError(
                f"ids ({self.ids.shape[0]}) and coords ({self.coords.shape[0]}) disagree"
            )
        if self.weights is None:
            self.weights = np.ones(len(self.ids), dtype=np.float64)
        else:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
            if self.weights.shape[0] != self.ids.shape[0]:
                raise FormatError(
                    f"weights ({self.weights.shape[0]}) and ids ({self.ids.shape[0]}) disagree"
                )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_coords(cls, coords: np.ndarray, *, id_offset: int = 0) -> "PointSet":
        """Build a point set with sequential IDs starting at ``id_offset``."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            coords = coords.reshape(-1, 2)
        n = coords.shape[0]
        return cls(ids=np.arange(id_offset, id_offset + n, dtype=np.int64), coords=coords)

    @classmethod
    def empty(cls) -> "PointSet":
        """An empty point set (useful for degenerate partitions)."""
        return cls(
            ids=np.empty(0, dtype=np.int64),
            coords=np.empty((0, 2), dtype=np.float64),
            weights=np.empty(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def take(self, index: np.ndarray) -> "PointSet":
        """Select a subset by positional index (or boolean mask)."""
        index = np.asarray(index)
        return PointSet(
            ids=self.ids[index],
            coords=self.coords[index],
            weights=self.weights[index],
        )

    def concat(self, other: "PointSet") -> "PointSet":
        """Concatenate two point sets (IDs are not deduplicated)."""
        return PointSet(
            ids=np.concatenate([self.ids, other.ids]),
            coords=np.concatenate([self.coords, other.coords]),
            weights=np.concatenate([self.weights, other.weights]),
        )

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def xs(self) -> np.ndarray:
        """View of the x column."""
        return self.coords[:, 0]

    @property
    def ys(self) -> np.ndarray:
        """View of the y column."""
        return self.coords[:, 1]

    def bounds(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` bounding box; raises on empty sets."""
        if len(self) == 0:
            raise FormatError("bounds() of an empty PointSet")
        return (
            float(self.xs.min()),
            float(self.ys.min()),
            float(self.xs.max()),
            float(self.ys.max()),
        )

    def nbytes(self) -> int:
        """Total payload size in bytes (what a binary file would store)."""
        return int(self.ids.nbytes + self.coords.nbytes + self.weights.nbytes)

    def payload_bytes(self) -> int:
        """Wire-size hook for :func:`repro.mrnet.packets.payload_nbytes`."""
        return self.nbytes()

    def validate_unique_ids(self) -> None:
        """Raise :class:`FormatError` if any point ID repeats."""
        if len(self) != len(np.unique(self.ids)):
            raise FormatError("point IDs are not unique")

    def finite_mask(self) -> np.ndarray:
        """Boolean mask of rows whose coordinates *and* weight are finite."""
        return np.isfinite(self.coords).all(axis=1) & np.isfinite(self.weights)

    def validate_finite(self) -> None:
        """Raise :class:`DataValidationError` on NaN/inf coordinates or weights.

        Grid hashing maps non-finite coordinates to nonsense cells, so the
        pipeline rejects them up front rather than clustering garbage.
        """
        if not np.isfinite(self.coords).all():
            bad = int(np.count_nonzero(~np.isfinite(self.coords).all(axis=1)))
            raise DataValidationError(
                f"{bad} points have non-finite coordinates"
            )
        if not np.isfinite(self.weights).all():
            raise DataValidationError("non-finite weights")

    def drop_invalid(self) -> tuple["PointSet", int]:
        """Strip rows with non-finite coordinates/weights.

        Returns the cleaned set and the number of rows dropped.  The
        original set is returned unchanged (and 0) when everything is
        finite, so callers on the hot path pay nothing for clean data.
        """
        mask = self.finite_mask()
        n_bad = int(len(self) - np.count_nonzero(mask))
        if n_bad == 0:
            return self, 0
        return self.take(mask), n_bad
