"""Command-line interface: ``mrscan`` / ``python -m repro``.

Subcommands
-----------
``generate``  write a synthetic dataset (twitter / sdss / blobs) to a file
``cluster``   run the full Mr. Scan pipeline over a point file
``quality``   compare a clustering against single-CPU reference DBSCAN
``fuzz``      differential/metamorphic fuzzing against reference DBSCAN
``bench-transport``  benchmark the local/process/shm execution backends
``bench-durability``  measure the journal+checkpoint overhead of durable runs
``serve``     long-lived clustering daemon with incremental batch ingest
``bench-serve``  load-generate against a live serve daemon
``worker``    TCP worker agent: dial a coordinator and execute leaf tasks
``simulate``  reproduce a paper figure through the performance model
``tune``      recommend transport/topology/partition config from history
``bench-tune``  benchmark planner-tuned configs against fixed defaults
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .points import PointSet

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mrscan",
        description="Mr. Scan (SC'13) reproduction: tree-distributed GPU DBSCAN",
    )
    parser.add_argument("--version", action="version", version=f"mrscan {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("dataset", choices=["twitter", "sdss", "blobs"])
    gen.add_argument("n_points", type=int)
    gen.add_argument("output", type=Path)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--format", choices=["binary", "text"], default="binary")

    clu = sub.add_parser("cluster", help="run the Mr. Scan pipeline")
    clu.add_argument("input", type=Path)
    clu.add_argument("--eps", type=float, required=True)
    clu.add_argument("--minpts", type=int, required=True)
    clu.add_argument("--leaves", type=int, default=4)
    clu.add_argument("--fanout", type=int, default=256)
    clu.add_argument("--partition-nodes", type=int, default=None)
    clu.add_argument("--no-densebox", action="store_true")
    clu.add_argument(
        "--algorithm", choices=["mrscan", "cuda-dclust"], default="mrscan"
    )
    clu.add_argument(
        "--cluster-engine",
        choices=["block", "csr"],
        default=None,
        help="cluster-phase kernel implementation: 'csr' (vectorised "
        "whole-leaf kernels, the default) or 'block' (per-cell loops, "
        "the differential oracle); labels are byte-identical "
        "(default: $MRSCAN_CLUSTER_ENGINE, then csr)",
    )
    clu.add_argument(
        "--partition-output", choices=["lustre", "network"], default="lustre"
    )
    clu.add_argument("--output", type=Path, default=None, help="labels file (text)")
    clu.add_argument("--json", action="store_true", help="print a JSON report")
    clu.add_argument("--verbose", action="store_true", help="log phase progress")
    clu.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="record telemetry and write a Chrome trace_event JSON file "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    clu.add_argument(
        "--trace-jsonl",
        type=Path,
        default=None,
        metavar="PATH",
        help="record telemetry and write a flat JSONL span/metric log",
    )
    clu.add_argument(
        "--trace-summary",
        action="store_true",
        help="record telemetry and print the span/metric summary table",
    )
    clu.add_argument(
        "--trace-summary-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="record telemetry and write the machine-readable summary "
        "(mrscan-telemetry-summary/1: per-phase walls, span stats, "
        "metrics) as JSON — the tune planner's file-based evidence",
    )
    clu.add_argument(
        "--faults",
        type=Path,
        default=None,
        metavar="PATH",
        help="inject faults from a FaultPlan JSON file (chaos testing); "
        "the run recovers via retries/failover and reports every event",
    )
    clu.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-node retry budget before failover (default 2)",
    )
    clu.add_argument(
        "--leaf-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline per leaf attempt; a straggler exceeding it fails "
        "with LeafTimeoutError and is retried (default: none)",
    )
    clu.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="checkpoint each leaf's clustering output so retried or "
        "failed-over leaves resume without re-clustering",
    )
    clu.add_argument(
        "--run-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="durable-run directory (repro.durability): write-ahead "
        "journal + phase checkpoints; a crashed run restarts with "
        "--resume and re-executes only unfinished work",
    )
    clu.add_argument(
        "--resume",
        action="store_true",
        help="resume a crashed run from --run-dir (labels are "
        "byte-identical to an uninterrupted run)",
    )
    clu.add_argument(
        "--drop-invalid",
        action="store_true",
        help="strip NaN/Inf input rows (reported in the summary) instead "
        "of rejecting the file",
    )
    clu.add_argument(
        "--validate",
        choices=["off", "cheap", "full"],
        default="off",
        help="check the paper's phase-boundary invariants at runtime "
        "(repro.validate): 'cheap' is O(n) bookkeeping, 'full' adds the "
        "geometric re-verifications; violations exit with status 3",
    )
    clu.add_argument(
        "--transport",
        choices=["local", "process", "shm", "tcp"],
        default=None,
        help="execution backend for both MRNet trees (repro.runtime): "
        "'local' runs in-process, 'process' pickles into a pool, 'shm' "
        "ships shared-memory refs to a persistent pool, 'tcp' dispatches "
        "to socket-connected worker agents (default: $MRSCAN_TRANSPORT, "
        "then local)",
    )
    clu.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for the process/shm transports "
        "(default: CPU count)",
    )
    clu.add_argument(
        "--auto-tune",
        action="store_true",
        help="let the tune planner (repro.tune) fill the label-neutral "
        "knobs left unset (--transport/--workers/--cluster-engine) from "
        "calibrated run history; labels are unaffected by construction",
    )
    clu.add_argument(
        "--tune-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="tune profile-store directory (default: $MRSCAN_TUNE_DIR, "
        "then ~/.mrscan/profiles)",
    )
    clu.add_argument(
        "--tune-record",
        action="store_true",
        help="record this run's tune profile to the store even without "
        "--auto-tune (history-building)",
    )
    clu.add_argument(
        "--tune-plan",
        type=Path,
        default=None,
        metavar="PATH",
        help="apply a plan written by `mrscan tune --apply`: fills unset "
        "execution knobs AND applies the advisory topology (leaf count, "
        "fanout, partition split hints) — advisory knobs renumber "
        "labels, so this is opt-in, never automatic",
    )

    ana = sub.add_parser("analyze", help="per-cluster statistics of a clustering")
    ana.add_argument("input", type=Path, help="point file")
    ana.add_argument("labels", type=Path, help="labels file from `cluster --output`")
    ana.add_argument("--top", type=int, default=10)
    ana.add_argument("--json", action="store_true")

    qua = sub.add_parser("quality", help="DBDC quality vs reference DBSCAN")
    qua.add_argument("input", type=Path)
    qua.add_argument("--eps", type=float, required=True)
    qua.add_argument("--minpts", type=int, required=True)
    qua.add_argument("--leaves", type=int, default=4)

    fz = sub.add_parser(
        "fuzz",
        help="seeded differential + metamorphic fuzzing vs reference DBSCAN",
    )
    fz.add_argument(
        "--cases", type=int, default=25, help="number of seeded cases (default 25)"
    )
    fz.add_argument("--seed", type=int, default=0, help="first case seed")
    fz.add_argument(
        "--validate",
        choices=["off", "cheap", "full"],
        default="full",
        help="invariant-checking level for every pipeline run (default full)",
    )
    fz.add_argument(
        "--max-points", type=int, default=1200, help="dataset size cap per case"
    )
    fz.add_argument(
        "--fault-fraction",
        type=float,
        default=0.5,
        help="fraction of cases that inject a seeded fault plan (default 0.5)",
    )
    fz.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the permutation/transform/duplicate metamorphic checks",
    )
    fz.add_argument(
        "--artifact-dir",
        type=Path,
        default=Path("fuzz-artifacts"),
        metavar="DIR",
        help="where minimized failing-case repro artifacts are written",
    )
    fz.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="ARTIFACT",
        help="re-run the minimized case of a repro artifact instead of sweeping",
    )
    fz.add_argument("--json", action="store_true", help="print a JSON report")

    bt = sub.add_parser(
        "bench-transport",
        help="benchmark the local/process/shm transports (repro.runtime)",
    )
    bt.add_argument(
        "--points", type=int, default=1_000_000, help="data-plane dataset size"
    )
    bt.add_argument(
        "--pipeline-points",
        type=int,
        default=None,
        help="end-to-end dataset size (default: --points)",
    )
    bt.add_argument("--tasks", type=int, default=64, help="slices per round")
    bt.add_argument("--leaves", type=int, default=8)
    bt.add_argument("--workers", type=int, default=None, metavar="N")
    bt.add_argument("--repeats", type=int, default=3, help="timed rounds, best kept")
    bt.add_argument("--seed", type=int, default=0)
    bt.add_argument(
        "--transports",
        default="local,process,shm",
        help="comma-separated subset to run (default: local,process,shm; "
        "add 'tcp' to measure the socket boundary)",
    )
    bt.add_argument(
        "--skip-pipeline",
        action="store_true",
        help="only run the data-plane dispatch section",
    )
    bt.add_argument(
        "--skip-engines",
        action="store_true",
        help="skip the cluster-engine (block vs csr) shootout section",
    )
    bt.add_argument(
        "--engine-points",
        type=int,
        default=100_000,
        help="dataset size for the cluster-engine shootout",
    )
    bt.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR8.json"),
        help="JSON report path (default BENCH_PR8.json)",
    )
    bt.add_argument("--json", action="store_true", help="also print the report")

    bd = sub.add_parser(
        "bench-durability",
        help="measure journal+checkpoint overhead of durable runs "
        "(repro.durability)",
    )
    bd.add_argument(
        "--points", type=int, default=1_000_000, help="dataset size (default 1M)"
    )
    bd.add_argument("--leaves", type=int, default=8)
    bd.add_argument("--repeats", type=int, default=3, help="runs per mode, best kept")
    bd.add_argument("--seed", type=int, default=0)
    bd.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR5.json"),
        help="JSON report path (default BENCH_PR5.json)",
    )
    bd.add_argument("--json", action="store_true", help="also print the report")

    srv = sub.add_parser(
        "serve",
        help="run the long-lived clustering daemon (repro.serve): async "
        "batch ingest + incremental dirty-partition re-clustering",
    )
    srv.add_argument("input", type=Path, help="base dataset to load resident")
    srv.add_argument("--eps", type=float, required=True)
    srv.add_argument("--minpts", type=int, required=True)
    srv.add_argument("--leaves", type=int, default=8)
    srv.add_argument("--fanout", type=int, default=256)
    srv.add_argument(
        "--socket", type=Path, default=None, metavar="PATH",
        help="unix socket to listen on (default /tmp/mrscan-serve.sock "
        "unless --port is given)",
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="listen on 127.0.0.1:PORT instead of a unix socket (0 = "
        "ephemeral, printed at startup)",
    )
    srv.add_argument(
        "--transport", choices=["local", "process", "shm", "tcp"], default=None,
        help="resident execution backend (default: $MRSCAN_TRANSPORT, "
        "then local); pool and arenas stay warm across ingests",
    )
    srv.add_argument("--workers", type=int, default=None, metavar="N")
    srv.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="durable serving session: every acked ingest is journaled "
        "(repro.durability.IngestLog); restart with --resume to recover",
    )
    srv.add_argument(
        "--resume", action="store_true",
        help="replay the run-dir's acked ingests on top of the base "
        "dataset before accepting traffic",
    )
    srv.add_argument(
        "--faults", type=Path, default=None, metavar="PATH",
        help="inject faults from a FaultPlan JSON file into the "
        "incremental runs (chaos testing)",
    )
    srv.add_argument(
        "--max-queued-ingests", type=int, default=8, metavar="N",
        help="ingests queued-or-running before new ones are shed with a "
        "retryable 'overloaded' response (default 8)",
    )
    srv.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="concurrent client connections before new ones are refused "
        "(default 64)",
    )
    srv.add_argument(
        "--ingest-deadline", type=float, default=None, metavar="SECONDS",
        help="server-side ceiling on any ingest; past it the transaction "
        "is cancelled and rolled back (default: none)",
    )
    srv.add_argument(
        "--max-batch-points", type=int, default=1_000_000, metavar="N",
        help="hard cap on points per ingest batch (default 1M)",
    )
    srv.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive infrastructure ingest failures that trip the "
        "circuit breaker into degraded mode (default 3)",
    )
    srv.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="seconds the breaker stays open before a half-open probe "
        "(default 30)",
    )
    srv.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="seconds a SIGTERM/drain waits for the in-flight ingest "
        "before cancelling it (default 10)",
    )
    srv.add_argument("--verbose", action="store_true")

    bs = sub.add_parser(
        "bench-serve",
        help="load-generate against a live serve daemon (repro.serve.loadgen)",
    )
    bs.add_argument(
        "--points", type=int, default=100_000,
        help="resident dataset size (default 100k)",
    )
    bs.add_argument(
        "--large", action="store_true",
        help="also run the 1M-resident-points size",
    )
    bs.add_argument("--batches", type=int, default=10, help="ingest batches")
    bs.add_argument("--batch-size", type=int, default=500)
    bs.add_argument("--query-clients", type=int, default=2)
    bs.add_argument("--queries-per-client", type=int, default=50)
    bs.add_argument("--eps", type=float, default=0.08)
    bs.add_argument("--minpts", type=int, default=8)
    bs.add_argument("--leaves", type=int, default=16)
    bs.add_argument(
        "--transport", choices=["local", "process", "shm", "tcp"], default="local"
    )
    bs.add_argument("--seed", type=int, default=0)
    bs.add_argument(
        "--skip-full", action="store_true",
        help="skip the from-scratch anchor run (no speedup/equivalence)",
    )
    bs.add_argument(
        "--overload", action="store_true",
        help="run the overload chaos scenario instead: flood a tiny-queue "
        "daemon with concurrent ingests + a stalled client; exits non-zero "
        "on any hang, unbounded queue, malformed shed, slow query p99, or "
        "label divergence",
    )
    bs.add_argument(
        "--flood-clients", type=int, default=6,
        help="concurrent ingest streams in --overload (default 6)",
    )
    bs.add_argument(
        "--max-queued-ingests", type=int, default=2,
        help="daemon queue bound in --overload (default 2, to force sheds)",
    )
    bs.add_argument(
        "--query-p99-budget", type=float, default=0.05, metavar="SECONDS",
        help="--overload gate on query p99 during the flood (default 0.05)",
    )
    bs.add_argument(
        "--output", type=Path, default=Path("BENCH_PR6.json"),
        help="JSON report path (default BENCH_PR6.json)",
    )
    bs.add_argument("--json", action="store_true", help="also print the report")

    wrk = sub.add_parser(
        "worker",
        help="TCP worker agent (repro.mrnet.tcp): connect to a "
        "coordinator running with --transport tcp and execute leaf tasks; "
        "reconnects with backoff if the connection drops",
    )
    wrk.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (the coordinator's MRSCAN_TCP_PORT)",
    )
    wrk.add_argument(
        "--worker-id",
        default=None,
        help="stable identity in handshakes and logs (default: "
        "worker-<hostname>-<pid>)",
    )
    wrk.add_argument(
        "--fingerprint",
        default=None,
        help="config fingerprint offered at handshake; a coordinator "
        "expecting a different one rejects this agent "
        "(default: $MRSCAN_TCP_FINGERPRINT)",
    )
    wrk.add_argument(
        "--max-reconnects",
        type=int,
        default=None,
        metavar="N",
        help="reconnect attempts before giving up (default 60; 0 = "
        "never reconnect)",
    )
    wrk.add_argument("--verbose", action="store_true")

    sim = sub.add_parser("simulate", help="reproduce a paper figure (perf model)")
    sim.add_argument(
        "figure",
        choices=[
            "fig8",
            "fig9a",
            "fig9b",
            "fig9c",
            "fig10",
            "fig12",
            "fig13",
            "table1",
            "whatif_network_partition",
            "whatif_subdivide_dense_cells",
        ],
    )
    sim.add_argument("--json", action="store_true")

    tun = sub.add_parser(
        "tune",
        help="recommend a configuration for a dataset from calibrated "
        "run history (repro.tune)",
    )
    tun.add_argument("input", type=Path, help="point file to plan for")
    tun.add_argument("--eps", type=float, required=True)
    tun.add_argument("--minpts", type=int, required=True)
    tun.add_argument(
        "--leaves", type=int, default=8, help="current leaf count (default 8)"
    )
    tun.add_argument("--fanout", type=int, default=256)
    tun.add_argument(
        "--tune-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="profile-store directory (default: $MRSCAN_TUNE_DIR, then "
        "~/.mrscan/profiles); priors are used when it is empty",
    )
    tun.add_argument(
        "--allow-tcp",
        action="store_true",
        help="include the tcp transport in the candidate space",
    )
    tun.add_argument(
        "--skew-factor",
        type=float,
        default=2.0,
        metavar="K",
        help="suggest splitting the recorded slowest leaf when its wall "
        "exceeds K x the median leaf wall (default 2.0)",
    )
    tun.add_argument(
        "--apply",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the full plan (mrscan-tune-plan/1 JSON) for "
        "`mrscan cluster --tune-plan`",
    )
    tun.add_argument(
        "--explain",
        action="store_true",
        help="print the evidence behind each recommendation",
    )
    tun.add_argument("--json", action="store_true", help="print the plan as JSON")

    btu = sub.add_parser(
        "bench-tune",
        help="benchmark planner-tuned configs against fixed defaults "
        "(repro.tune.bench)",
    )
    btu.add_argument(
        "--repeats", type=int, default=2, help="timed runs per config, best kept"
    )
    btu.add_argument("--seed", type=int, default=0)
    btu.add_argument(
        "--tune-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="profile store for the history pass (default: a throwaway "
        "temp dir, so the bench is hermetic)",
    )
    btu.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR9.json"),
        help="JSON report path (default BENCH_PR9.json)",
    )
    btu.add_argument("--json", action="store_true", help="also print the report")
    return parser


def _load_points(path: Path, *, validate: bool = True) -> PointSet:
    from .io.formats import read_points_binary, read_points_text

    if path.suffix in (".txt", ".csv", ".tsv"):
        return read_points_text(path, validate=validate)
    return read_points_binary(path, validate=validate)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data import gaussian_blobs, generate_sdss, generate_twitter
    from .io.formats import write_points_binary, write_points_text

    if args.dataset == "twitter":
        points = generate_twitter(args.n_points, seed=args.seed)
    elif args.dataset == "sdss":
        points = generate_sdss(args.n_points, seed=args.seed)
    else:
        points = gaussian_blobs(args.n_points, seed=args.seed)
    writer = write_points_binary if args.format == "binary" else write_points_text
    nbytes = writer(args.output, points)
    print(f"wrote {len(points):,} points ({nbytes:,} bytes) to {args.output}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import logging

    from .core.pipeline import mrscan

    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")
    # Fail fast on unwritable trace paths, before the (expensive) run.
    for opt, path in (
        ("--trace-out", args.trace_out),
        ("--trace-jsonl", args.trace_jsonl),
        ("--trace-summary-json", args.trace_summary_json),
    ):
        if path is None:
            continue
        if path.is_dir():
            print(f"error: {opt} {path} is a directory", file=sys.stderr)
            return 2
        if not path.parent.exists():
            print(f"error: {opt}: directory {path.parent} does not exist", file=sys.stderr)
            return 2
    fault_plan = None
    if args.faults is not None:
        from .resilience import FaultPlan

        if not args.faults.exists():
            print(f"error: --faults {args.faults} does not exist", file=sys.stderr)
            return 2
        fault_plan = FaultPlan.load(args.faults)
        print(f"injecting {fault_plan.describe()}")
    if args.resume and args.run_dir is None:
        print("error: --resume requires --run-dir", file=sys.stderr)
        return 2
    from .errors import DataValidationError, DurabilityError, ValidationError

    try:
        points = _load_points(args.input, validate=not args.drop_invalid)
    except DataValidationError as exc:
        print(
            f"error: {exc}\n(re-run with --drop-invalid to strip the "
            "offending rows)",
            file=sys.stderr,
        )
        return 2
    trace_enabled = bool(
        args.trace_out
        or args.trace_jsonl
        or args.trace_summary
        or args.trace_summary_json
    )

    n_leaves = args.leaves
    fanout = args.fanout
    transport = args.transport
    workers = args.workers
    cluster_engine = args.cluster_engine
    partition_hints = None
    if args.tune_plan is not None:
        from .errors import TuneError
        from .partition.plan import PartitionHints
        from .tune import TunePlan

        try:
            tplan = TunePlan.load(args.tune_plan)
        except (OSError, ValueError, TuneError) as exc:
            print(f"error: --tune-plan {args.tune_plan}: {exc}", file=sys.stderr)
            return 2
        # Plan fills only the execution knobs the command line left
        # unset; its advisory topology (label-affecting) always applies
        # — that is what --tune-plan opts into.
        if transport is None:
            transport = tplan.apply.get("transport")
            if workers is None:
                workers = tplan.apply.get("transport_workers")
        if cluster_engine is None:
            cluster_engine = tplan.apply.get("cluster_engine")
        n_leaves = int(tplan.advise.get("n_leaves", n_leaves))
        fanout = int(tplan.advise.get("fanout", fanout))
        hints_doc = tplan.advise.get("partition_hints")
        if hints_doc:
            partition_hints = PartitionHints.from_dict(hints_doc)
        print(
            f"tune plan applied: transport={transport or 'local'} "
            f"engine={cluster_engine or 'csr'} leaves={n_leaves} "
            f"fanout={fanout}"
            + (" + partition split hints" if partition_hints else "")
        )

    try:
        result = mrscan(
            points,
            args.eps,
            args.minpts,
            n_leaves=n_leaves,
            fanout=fanout,
            n_partition_nodes=args.partition_nodes,
            use_densebox=not args.no_densebox,
            leaf_algorithm=args.algorithm,
            cluster_engine=cluster_engine,
            partition_output=args.partition_output,
            telemetry=trace_enabled,
            fault_plan=fault_plan,
            max_retries=args.max_retries,
            leaf_timeout=args.leaf_timeout,
            checkpoint_dir=(
                str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
            ),
            validate=args.validate,
            transport=transport,
            transport_workers=workers,
            run_dir=(str(args.run_dir) if args.run_dir is not None else None),
            resume=args.resume,
            drop_invalid=args.drop_invalid,
            partition_hints=partition_hints,
            auto_tune=args.auto_tune,
            tune_dir=(str(args.tune_dir) if args.tune_dir is not None else None),
            tune_record=args.tune_record,
        )
    except DurabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValidationError as exc:
        print(f"validation FAILED: {exc}", file=sys.stderr)
        for v in exc.violations[:20]:
            print(f"  {v}", file=sys.stderr)
        return 3
    if result.resumed:
        restored = ", ".join(result.phases_restored) or "none"
        print(
            f"resumed from {args.run_dir} (phases restored: {restored}; "
            f"leaf checkpoint hits: {result.checkpoint_hits})"
        )
    if result.n_dropped_invalid:
        print(
            f"dropped {result.n_dropped_invalid} input row(s) with "
            "non-finite coordinates/weights"
        )
    if args.validate != "off" and result.validation is not None:
        print(result.validation.summary().splitlines()[0])
    if result.fault_summary.get("total"):
        print(
            "faults survived: "
            + ", ".join(
                f"{k}={v}" for k, v in result.fault_summary["by_kind"].items()
            )
            + " | actions: "
            + ", ".join(
                f"{k}={v}" for k, v in result.fault_summary["by_action"].items()
            )
            + (
                f" | checkpoint hits: {result.checkpoint_hits}"
                if result.checkpoint_hits
                else ""
            )
        )
    if args.json:
        print(
            json.dumps(
                {
                    "n_points": result.n_points,
                    "n_clusters": result.n_clusters,
                    "n_noise": result.n_noise,
                    "n_leaves": result.n_leaves,
                    "timings": result.timings.as_dict(),
                    "densebox_eliminated": result.total_densebox_eliminated,
                    "faults": result.fault_summary,
                    "checkpoint_hits": result.checkpoint_hits,
                    "resumed": result.resumed,
                    "phases_restored": result.phases_restored,
                    "n_dropped_invalid": result.n_dropped_invalid,
                },
                indent=1,
            )
        )
    else:
        print(result.summary())
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            for pid, lab in zip(points.ids, result.labels):
                fh.write(f"{int(pid)} {int(lab)}\n")
        print(f"labels written to {args.output}")
    if trace_enabled:
        telemetry = result.telemetry
        if args.trace_out is not None:
            n_events = telemetry.write_chrome_trace(args.trace_out)
            print(
                f"chrome trace ({n_events} events) written to {args.trace_out} "
                "- open in chrome://tracing or https://ui.perfetto.dev"
            )
        if args.trace_jsonl is not None:
            n_lines = telemetry.write_jsonl(args.trace_jsonl)
            print(f"telemetry JSONL ({n_lines} lines) written to {args.trace_jsonl}")
        if args.trace_summary_json is not None:
            telemetry.write_summary_json(args.trace_summary_json)
            print(f"telemetry summary JSON written to {args.trace_summary_json}")
        if args.trace_summary:
            print(telemetry.summary())
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    from .core.pipeline import mrscan
    from .dbscan import dbscan_reference
    from .quality import dbdc_quality_score

    points = _load_points(args.input)
    ref = dbscan_reference(points, args.eps, args.minpts)
    result = mrscan(points, args.eps, args.minpts, n_leaves=args.leaves)
    report = dbdc_quality_score(ref.labels, result.labels)
    print(report)
    return 0 if report.score >= 0.99 else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis import cluster_table, noise_summary
    from .errors import FormatError

    points = _load_points(args.input)
    id_to_label: dict[int, int] = {}
    with open(args.labels, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            parts = line.split()
            if len(parts) != 2:
                raise FormatError(f"{args.labels}:{lineno}: expected 'id label'")
            id_to_label[int(parts[0])] = int(parts[1])
    try:
        labels = np.array([id_to_label[int(pid)] for pid in points.ids])
    except KeyError as exc:
        raise FormatError(f"labels file is missing point id {exc}") from exc

    table = cluster_table(points, labels)
    noise = noise_summary(points, labels)
    if args.json:
        print(
            json.dumps(
                {
                    "clusters": [s.as_dict() for s in table[: args.top]],
                    "n_clusters": len(table),
                    "noise": noise,
                },
                indent=1,
            )
        )
        return 0
    print(f"{len(table)} clusters, {noise['count']} noise points "
          f"({100*noise['fraction']:.1f}%)")
    print(f"{'label':>6} {'size':>8} {'centroid':>22} {'rms':>8} {'weight':>10}")
    for s in table[: args.top]:
        print(
            f"{s.label:>6} {s.size:>8,} "
            f"({s.centroid[0]:9.3f},{s.centroid[1]:9.3f}) "
            f"{s.rms_radius:>8.3f} {s.total_weight:>10.1f}"
        )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .validate import load_case, minimize_failures, run_case, run_sweep

    metamorphic = not args.no_metamorphic
    if args.replay is not None:
        if not args.replay.exists():
            print(f"error: --replay {args.replay} does not exist", file=sys.stderr)
            return 2
        case = load_case(args.replay)
        outcome = run_case(case, validate=args.validate, metamorphic=metamorphic)
        if args.json:
            print(json.dumps(outcome.as_dict(), indent=1))
        else:
            print(outcome.describe())
        return 0 if outcome.ok else 1

    report = run_sweep(
        args.cases,
        seed=args.seed,
        validate=args.validate,
        metamorphic=metamorphic,
        max_points=args.max_points,
        fault_fraction=args.fault_fraction,
        on_case=(
            None if args.json else lambda o: print(o.describe(), flush=True)
        ),
    )
    if args.json:
        print(
            json.dumps(
                {
                    "n_cases": report.n_cases,
                    "n_failed": report.n_failed,
                    "failures": [o.as_dict() for o in report.failed()],
                },
                indent=1,
            )
        )
    else:
        print(report.describe().splitlines()[-1])
    if not report.ok:
        for path in minimize_failures(
            report, args.artifact_dir, validate=args.validate, metamorphic=metamorphic
        ):
            print(f"minimized repro written to {path}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_transport(args: argparse.Namespace) -> int:
    from .runtime.bench import run_transport_bench

    transports = tuple(
        name.strip() for name in args.transports.split(",") if name.strip()
    )
    try:
        report = run_transport_bench(
            n_points=args.points,
            pipeline_points=args.pipeline_points,
            n_tasks=args.tasks,
            n_leaves=args.leaves,
            n_workers=args.workers,
            repeats=args.repeats,
            seed=args.seed,
            transports=transports,
            skip_pipeline=args.skip_pipeline,
            skip_engines=args.skip_engines,
            engine_points=args.engine_points,
            output=args.output,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        dp = report["dataplane"]
        print(
            f"data plane: {dp['n_points']:,} points x {dp['n_tasks']} tasks, "
            f"{report['n_workers']} workers"
        )
        for name, row in dp["results"].items():
            print(
                f"  {name:>8}: {row['round_seconds']*1e3:8.1f} ms/round "
                f"({row['points_per_sec']:,.0f} points/sec)"
            )
        if "speedup_shm_vs_process" in dp:
            print(f"  shm vs process: {dp['speedup_shm_vs_process']:.2f}x")
        if "pipeline" in report:
            pl = report["pipeline"]
            print(f"pipeline: {pl['n_points']:,} points, {pl['n_leaves']} leaves")
            for name, row in pl["results"].items():
                print(
                    f"  {name:>8}: {row['wall_seconds']:7.2f} s "
                    f"({row['points_per_sec']:,.0f} points/sec)"
                )
        if "cluster_engines" in report:
            ce = report["cluster_engines"]
            print(
                f"cluster engines: {ce['n_points']:,} points, "
                f"eps={ce['eps']} minpts={ce['minpts']}"
            )
            for name, row in ce["results"].items():
                print(
                    f"  {name:>8}: {row['cluster_seconds']:7.2f} s "
                    f"({row['points_per_sec']:,.0f} points/sec)"
                )
            if "speedup_csr_vs_block" in ce:
                print(f"  csr vs block: {ce['speedup_csr_vs_block']:.2f}x")
    print(f"report written to {args.output}")
    return 0


def _cmd_bench_durability(args: argparse.Namespace) -> int:
    from .durability.bench import run_durability_bench

    report = run_durability_bench(
        n_points=args.points,
        n_leaves=args.leaves,
        repeats=args.repeats,
        seed=args.seed,
        output=args.output,
    )
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        base = report["baseline"]["wall_seconds"]
        dur = report["durable"]["wall_seconds"]
        print(
            f"durability bench: {report['n_points']:,} points, "
            f"{report['n_leaves']} leaves"
        )
        print(f"  baseline: {base:7.2f} s")
        print(
            f"   durable: {dur:7.2f} s "
            f"({report['durable']['journal_records']} journal records, "
            f"{report['durable']['checkpoint_bytes']:,} checkpoint bytes)"
        )
        print(f"  overhead: {100 * report['overhead_fraction']:+.1f}%")
    print(f"report written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from .core.config import MrScanConfig
    from .errors import MrScanError
    from .serve.server import ServeServer

    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")
    if args.resume and args.run_dir is None:
        print("error: --resume requires --run-dir", file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults is not None:
        from .resilience import FaultPlan

        if not args.faults.exists():
            print(f"error: --faults {args.faults} does not exist", file=sys.stderr)
            return 2
        fault_plan = FaultPlan.load(args.faults)
        print(f"injecting {fault_plan.describe()}")
    socket_path = args.socket
    if socket_path is None and args.port is None:
        socket_path = Path("/tmp/mrscan-serve.sock")
    points = _load_points(args.input)
    config = MrScanConfig(
        eps=args.eps,
        minpts=args.minpts,
        n_leaves=args.leaves,
        fanout=args.fanout,
        transport=args.transport,
        transport_workers=args.workers,
        fault_plan=fault_plan,
    )

    async def _run() -> None:
        import signal

        server = ServeServer(
            points,
            config,
            socket_path=socket_path,
            port=args.port,
            run_dir=args.run_dir,
            resume=args.resume,
            max_queued_ingests=args.max_queued_ingests,
            max_connections=args.max_connections,
            ingest_deadline=args.ingest_deadline,
            max_batch_points=args.max_batch_points,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            drain_grace=args.drain_grace,
        )
        loop = asyncio.get_running_loop()
        # Graceful drain on SIGTERM/SIGINT: stop admitting ingests, let
        # the in-flight one finish (or cancel it after --drain-grace),
        # quiesce the journal, exit 0.
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loop: fall back to KeyboardInterrupt
        try:
            await server.start()
            stats = server.state.stats()
            where = (
                str(socket_path) if socket_path is not None
                else f"127.0.0.1:{server.port}"
            )
            print(
                f"serving {stats['n_points']} points "
                f"({stats['n_clusters']} clusters) on {where}",
                flush=True,
            )
            await server.serve_forever()
        finally:
            server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; daemon stopped")
    except MrScanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .serve.loadgen import run_serve_bench, write_bench

    if args.overload:
        return _run_overload_gate(args)
    sizes = [args.points] + ([1_000_000] if args.large else [])
    results = []
    for size in sizes:
        print(f"bench-serve: {size} resident points ...", flush=True)
        results.append(
            run_serve_bench(
                resident_points=size,
                n_batches=args.batches,
                batch_size=args.batch_size,
                n_query_clients=args.query_clients,
                queries_per_client=args.queries_per_client,
                eps=args.eps,
                minpts=args.minpts,
                n_leaves=args.leaves,
                transport=args.transport,
                seed=args.seed,
                skip_full=args.skip_full,
            )
        )
        r = results[-1]
        line = (
            f"  {r['batches_per_sec']:.2f} batches/s, "
            f"dirty fraction {r['dirty_leaf_fraction_mean']:.2f}, "
            f"ingest p50 {r['ingest_seconds']['p50']:.3f}s"
        )
        if "speedup_incremental_vs_full" in r and r["speedup_incremental_vs_full"]:
            line += (
                f", {r['speedup_incremental_vs_full']:.1f}x vs full "
                f"({r['equivalence']})"
            )
        print(line)
    config = {
        "eps": args.eps,
        "minpts": args.minpts,
        "n_leaves": args.leaves,
        "transport": args.transport,
        "seed": args.seed,
        "batches": args.batches,
        "batch_size": args.batch_size,
    }
    payload = write_bench(results, config, args.output)
    if args.json:
        print(json.dumps(payload, indent=1))
    print(f"report written to {args.output}")
    return 0


def _run_overload_gate(args: argparse.Namespace) -> int:
    """``bench-serve --overload``: run the flood scenario and gate on
    its invariants (non-zero exit on any violation)."""
    from .serve.loadgen import run_overload_bench, write_bench

    print(
        f"bench-serve --overload: {args.flood_clients} flood clients vs "
        f"queue bound {args.max_queued_ingests} ...",
        flush=True,
    )
    r = run_overload_bench(
        flood_clients=args.flood_clients,
        max_queued_ingests=args.max_queued_ingests,
        n_query_clients=args.query_clients,
        eps=args.eps,
        minpts=args.minpts,
        n_leaves=args.leaves,
        transport=args.transport,
        seed=args.seed,
        skip_full=args.skip_full,
    )
    failures: list[str] = []
    if r["hangs"]:
        failures.append(f"{r['hangs']} hang(s): {r['hang_details']}")
    if r["max_queue_depth_seen"] > r["max_queued_ingests"]:
        failures.append(
            f"queue depth {r['max_queue_depth_seen']} exceeded the "
            f"{r['max_queued_ingests']} bound"
        )
    if r["shed_malformed"]:
        failures.append(f"malformed shed response(s): {r['shed_malformed']}")
    p99 = r["query_seconds"]["p99"]
    if p99 is not None and p99 > args.query_p99_budget:
        failures.append(
            f"query p99 {p99:.4f}s over the {args.query_p99_budget}s budget"
        )
    if not args.skip_full and not r.get("equivalence_ok", False):
        failures.append(
            f"labels diverged from clean run: {r.get('equivalence')}"
        )
    print(
        f"  {r['acked_batches']}/{r['expected_batches']} batches acked, "
        f"{r['shed_total']} shed(s), max queue depth "
        f"{r['max_queue_depth_seen']}, query p99 "
        f"{p99 if p99 is not None else float('nan'):.4f}s"
    )
    if "equivalence" in r:
        print(f"  equivalence: {r['equivalence']}")
    payload = write_bench([r], {"scenario": "overload"}, args.output)
    if args.json:
        print(json.dumps(payload, indent=1))
    print(f"report written to {args.output}")
    if failures:
        for f in failures:
            print(f"OVERLOAD GATE FAILED: {f}", file=sys.stderr)
        return 1
    print("overload gate passed")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import logging

    from .mrnet.tcp import DEFAULT_MAX_RECONNECTS, run_worker_agent

    if args.verbose:
        logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")
    max_reconnects = (
        DEFAULT_MAX_RECONNECTS if args.max_reconnects is None else args.max_reconnects
    )
    try:
        return run_worker_agent(
            args.connect,
            worker_id=args.worker_id,
            fingerprint=args.fingerprint,
            max_reconnects=max_reconnects,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .perf import figures

    builder = getattr(figures, args.figure)
    series = builder()
    if args.json:
        print(json.dumps(series.as_dict(), indent=1))
    else:
        print(series.render())
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tune import ProfileStore, fingerprint_workload, plan

    points = _load_points(args.input)
    store = ProfileStore(args.tune_dir)
    fp = fingerprint_workload(points, args.eps)
    tplan = plan(
        fp,
        store,
        n_leaves=args.leaves,
        fanout=args.fanout,
        allow_tcp=args.allow_tcp,
        skew_factor=args.skew_factor,
    )
    if args.json:
        print(tplan.to_json(), end="")
    else:
        apply = tplan.apply
        workers = apply["transport_workers"]
        print(
            f"recommended: --transport {apply['transport']}"
            + (f" --workers {workers}" if workers is not None else "")
            + f" --cluster-engine {apply['cluster_engine']}"
        )
        advise = tplan.advise
        print(
            f"advisory (label-renumbering, apply via --tune-plan): "
            f"--leaves {advise['n_leaves']} --fanout {advise['fanout']}"
            + (
                " + split partitions "
                + ",".join(sorted(advise["partition_hints"]["split"]))
                if advise.get("partition_hints")
                else ""
            )
        )
        if args.explain:
            for line in tplan.explain:
                print(f"  {line}")
    if args.apply is not None:
        args.apply.write_text(tplan.to_json(), encoding="utf-8")
        print(f"plan written to {args.apply} (use: mrscan cluster --tune-plan)")
    return 0


def _cmd_bench_tune(args: argparse.Namespace) -> int:
    from .tune import run_tune_bench

    report = run_tune_bench(
        repeats=args.repeats,
        seed=args.seed,
        tune_dir=args.tune_dir,
        output=args.output,
    )
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    print(f"report written to {args.output}")
    return 0 if report["gates"]["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "cluster": _cmd_cluster,
        "quality": _cmd_quality,
        "analyze": _cmd_analyze,
        "fuzz": _cmd_fuzz,
        "bench-transport": _cmd_bench_transport,
        "bench-durability": _cmd_bench_durability,
        "serve": _cmd_serve,
        "bench-serve": _cmd_bench_serve,
        "worker": _cmd_worker,
        "simulate": _cmd_simulate,
        "tune": _cmd_tune,
        "bench-tune": _cmd_bench_tune,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
