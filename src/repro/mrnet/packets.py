"""Packets and traffic accounting for the MRNet substrate.

Every payload moving along a tree edge is wrapped in a :class:`Packet`
with a byte-size estimate, and each network phase accumulates a
:class:`NetworkTrace`.  The perf model consumes the trace (packets per
level, bytes per edge) to charge tree latency at paper scale.

Shared-memory refs (:mod:`repro.runtime`) flow through packets like any
other payload, but their ``payload_bytes()`` hook reports the ~100-byte
pickled *handle* — the array they point at never travels, it is
materialized lazily at the receiver.  :func:`logical_nbytes` reports the
materialized size instead, so telemetry can account the traffic the
data plane avoided.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Packet", "NetworkTrace", "payload_nbytes", "logical_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire-size estimate of a payload.

    Objects can opt in by exposing ``payload_bytes()``; numpy arrays use
    their buffer size; containers recurse; everything else falls back to
    ``sys.getsizeof``.
    """
    if payload is None:
        return 0
    probe = getattr(payload, "payload_bytes", None)
    if callable(probe):
        return int(probe())
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(item) for item in payload) + 16
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()) + 16
    return int(sys.getsizeof(payload))


def logical_nbytes(payload: Any) -> int:
    """Materialized size of a payload: what :func:`payload_nbytes` would
    report if every shared-memory ref were replaced by its array.

    ``logical_nbytes(p) - payload_nbytes(p)`` is therefore the traffic a
    ref-carrying payload keeps off the wire (``runtime.bytes_avoided``).
    """
    probe = getattr(payload, "array_nbytes", None)
    if probe is not None and not callable(probe):
        return int(probe)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(logical_nbytes(item) for item in payload) + 16
    if isinstance(payload, dict):
        return sum(logical_nbytes(k) + logical_nbytes(v) for k, v in payload.items()) + 16
    return payload_nbytes(payload)


@dataclass(frozen=True)
class Packet:
    """One payload traversing one tree edge."""

    src: int
    dst: int
    tag: str
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("packet nbytes must be >= 0")


@dataclass
class NetworkTrace:
    """Ledger of one network phase (a reduce, multicast, or leaf map)."""

    packets: list[Packet] = field(default_factory=list)
    node_compute_seconds: dict[int, float] = field(default_factory=dict)

    def record(self, src: int, dst: int, tag: str, payload: Any) -> None:
        self.packets.append(
            Packet(src=int(src), dst=int(dst), tag=tag, nbytes=payload_nbytes(payload))
        )

    def add_compute(self, node: int, seconds: float) -> None:
        self.node_compute_seconds[node] = (
            self.node_compute_seconds.get(node, 0.0) + float(seconds)
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.packets)

    def bytes_into(self, node: int) -> int:
        """Bytes received by one node."""
        return sum(p.nbytes for p in self.packets if p.dst == node)

    def bytes_out_of(self, node: int) -> int:
        return sum(p.nbytes for p in self.packets if p.src == node)

    def merged(self, other: "NetworkTrace") -> "NetworkTrace":
        out = NetworkTrace(packets=self.packets + other.packets)
        out.node_compute_seconds = dict(self.node_compute_seconds)
        for node, sec in other.node_compute_seconds.items():
            out.node_compute_seconds[node] = out.node_compute_seconds.get(node, 0.0) + sec
        return out
