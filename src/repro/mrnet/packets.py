"""Packets and traffic accounting for the MRNet substrate.

Every payload moving along a tree edge is wrapped in a :class:`Packet`
with a byte-size estimate, and each network phase accumulates a
:class:`NetworkTrace`.  The perf model consumes the trace (packets per
level, bytes per edge) to charge tree latency at paper scale.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Packet", "NetworkTrace", "payload_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire-size estimate of a payload.

    Objects can opt in by exposing ``payload_bytes()``; numpy arrays use
    their buffer size; containers recurse; everything else falls back to
    ``sys.getsizeof``.
    """
    if payload is None:
        return 0
    probe = getattr(payload, "payload_bytes", None)
    if callable(probe):
        return int(probe())
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(item) for item in payload) + 16
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()) + 16
    return int(sys.getsizeof(payload))


@dataclass(frozen=True)
class Packet:
    """One payload traversing one tree edge."""

    src: int
    dst: int
    tag: str
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("packet nbytes must be >= 0")


@dataclass
class NetworkTrace:
    """Ledger of one network phase (a reduce, multicast, or leaf map)."""

    packets: list[Packet] = field(default_factory=list)
    node_compute_seconds: dict[int, float] = field(default_factory=dict)

    def record(self, src: int, dst: int, tag: str, payload: Any) -> None:
        self.packets.append(
            Packet(src=int(src), dst=int(dst), tag=tag, nbytes=payload_nbytes(payload))
        )

    def add_compute(self, node: int, seconds: float) -> None:
        self.node_compute_seconds[node] = (
            self.node_compute_seconds.get(node, 0.0) + float(seconds)
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.packets)

    def bytes_into(self, node: int) -> int:
        """Bytes received by one node."""
        return sum(p.nbytes for p in self.packets if p.dst == node)

    def bytes_out_of(self, node: int) -> int:
        return sum(p.nbytes for p in self.packets if p.src == node)

    def merged(self, other: "NetworkTrace") -> "NetworkTrace":
        out = NetworkTrace(packets=self.packets + other.packets)
        out.node_compute_seconds = dict(self.node_compute_seconds)
        for node, sec in other.node_compute_seconds.items():
            out.node_compute_seconds[node] = out.node_compute_seconds.get(node, 0.0) + sec
        return out
