"""Reduction filters for MRNet internal nodes.

In MRNet, a *filter* is the code an internal process runs over the packets
arriving from its children before forwarding one combined packet to its
parent.  Mr. Scan uses two domain filters — grid-histogram reduction in
the partitioner and progressive cluster merging (§3.3) in the merge phase
— plus trivial ones for control data.  Filters here are small picklable
objects so the multiprocessing transport can ship them to workers.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Sequence, runtime_checkable

__all__ = ["Filter", "FunctionFilter", "ListConcatFilter", "SumFilter"]


@runtime_checkable
class Filter(Protocol):
    """The upstream-combination protocol.

    ``combine`` receives the payloads of a node's children (leaf outputs
    or already-combined child results) in child order and returns the
    payload to forward upstream.  Implementations must be pure functions
    of their inputs: internal nodes at the same level may run in any order
    or in parallel.
    """

    def combine(self, payloads: Sequence[Any]) -> Any:
        ...


class FunctionFilter:
    """Wrap a plain function ``f(list_of_payloads) -> payload``.

    The function must be defined at module top level to survive pickling
    into worker processes.
    """

    def __init__(self, fn: Callable[[Sequence[Any]], Any]) -> None:
        self.fn = fn

    def combine(self, payloads: Sequence[Any]) -> Any:
        return self.fn(payloads)


class ListConcatFilter:
    """Concatenate child lists (order-preserving)."""

    def combine(self, payloads: Sequence[Any]) -> list:
        out: list = []
        for p in payloads:
            out.extend(p)
        return out


class SumFilter:
    """Add child payloads (numbers, numpy arrays, anything with +)."""

    def combine(self, payloads: Sequence[Any]):
        if not payloads:
            return 0
        total = payloads[0]
        for p in payloads[1:]:
            total = total + p
        return total
