"""Virtual parallel time: critical-path analysis of recorded phases.

The in-process transports execute every tree node on one host, so a
phase's *wall* time is the **sum** of all node computations.  On the real
machine the paper ran, nodes execute concurrently and a phase takes its
**critical path**: the slowest leaf for a map, the heaviest
root-to-leaf compute/transfer chain for a reduce or multicast.

These functions reconstruct that parallel time from a phase's
:class:`~repro.mrnet.packets.NetworkTrace` — per-node compute seconds are
recorded during execution, packet byte counts convert to link seconds via
``link_bandwidth`` (pass 0.0 to ignore transfer time).  The pipeline
exposes the result as ``MrScanResult.virtual_timings``, which is what the
laptop-scale benchmark series report so that real weak/strong scaling
curves reflect the algorithm instead of the host's core count.
"""

from __future__ import annotations

from ..errors import TopologyError
from .packets import NetworkTrace
from .topology import Topology

__all__ = ["map_virtual_time", "reduce_critical_path", "multicast_critical_path"]


def map_virtual_time(trace: NetworkTrace) -> float:
    """Parallel time of a leaf map: the slowest leaf dictates."""
    return max(trace.node_compute_seconds.values(), default=0.0)


def _link_seconds(nbytes: int, link_bandwidth: float) -> float:
    return nbytes / link_bandwidth if link_bandwidth > 0 else 0.0


def reduce_critical_path(
    topology: Topology, trace: NetworkTrace, *, link_bandwidth: float = 0.0
) -> float:
    """Parallel time of an upstream reduction.

    ``finish(node) = max over children (finish(child) + link(child->node))
    + compute(node)`` — leaves finish at 0 (their compute belongs to the
    preceding map phase), internal nodes and the root add their recorded
    filter time.
    """
    inbound: dict[tuple[int, int], int] = {}
    for p in trace.packets:
        key = (p.src, p.dst)
        inbound[key] = inbound.get(key, 0) + p.nbytes

    finish: dict[int, float] = {}
    for level in reversed(topology.levels()):
        for node in level:
            kids = topology.children[node]
            if not kids:
                finish[node] = 0.0
                continue
            arrive = max(
                finish[child] + _link_seconds(inbound.get((child, node), 0), link_bandwidth)
                for child in kids
            )
            finish[node] = arrive + trace.node_compute_seconds.get(node, 0.0)
    if topology.root not in finish:
        raise TopologyError("reduce critical path: root unreachable")
    return finish[topology.root]


def multicast_critical_path(
    topology: Topology, trace: NetworkTrace, *, link_bandwidth: float = 0.0
) -> float:
    """Parallel time of a downstream multicast (deepest arrival)."""
    outbound: dict[tuple[int, int], int] = {}
    for p in trace.packets:
        key = (p.src, p.dst)
        outbound[key] = outbound.get(key, 0) + p.nbytes

    arrive: dict[int, float] = {topology.root: 0.0}
    worst = 0.0
    for level in topology.levels():
        for node in level:
            base = arrive.get(node, 0.0)
            for child in topology.children[node]:
                t = base + _link_seconds(outbound.get((node, child), 0), link_bandwidth)
                arrive[child] = t
                worst = max(worst, t)
    return worst
