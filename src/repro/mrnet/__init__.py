"""MRNet substrate: a tree-based multicast/reduction process network.

Mr. Scan's process organisation is MRNet (Roth, Arnold & Miller, SC'03): a
multi-level tree of processes where leaves produce data, internal nodes run
*filters* that combine the data flowing up (reduction), and the root's
decisions flow back down (multicast).  Mr. Scan uses one MRNet tree for the
distributed partitioner and a second tree — with up to three levels and
256-way fanouts — for cluster/merge/sweep (§3, §5.1).

This package reimplements that model:

* :class:`Topology` — tree shapes (flat, paper-style 256-fanout, custom);
* :class:`Network` — ``map_leaves`` (leaf computation), ``reduce``
  (upstream filter application level by level), ``multicast`` (downstream
  distribution), all recording per-edge packet/byte traffic;
* transports — ``LocalTransport`` executes node work sequentially and
  deterministically in-process; ``ProcessTransport`` fans node work out to
  a multiprocessing pool (one Python process per tree node is the honest
  analogue of MRNet's process-per-node, but a bounded pool keeps this
  usable on small hosts).
"""

from .topology import Topology
from .packets import NetworkTrace, Packet
from .filters import (
    Filter,
    FunctionFilter,
    ListConcatFilter,
    SumFilter,
)
from .network import Network
from .tcp import TcpTransport, run_worker_agent
from .transport import LocalTransport, ProcessTransport, Transport

__all__ = [
    "Topology",
    "Packet",
    "NetworkTrace",
    "Filter",
    "FunctionFilter",
    "ListConcatFilter",
    "SumFilter",
    "Network",
    "Transport",
    "LocalTransport",
    "ProcessTransport",
    "TcpTransport",
    "run_worker_agent",
]
