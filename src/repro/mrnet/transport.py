"""Execution backends for MRNet node work.

The :class:`Network` decides *what* runs at each tree node; a transport
decides *how*: :class:`LocalTransport` runs tasks sequentially in-process
(deterministic, zero overhead — the default for tests and benches), while
:class:`ProcessTransport` executes each batch through a
``multiprocessing`` pool, which is the honest stand-in for MRNet's
process-per-node when real process isolation matters (failure injection,
pickling discipline, genuinely parallel hosts).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..errors import TransportError
from ..telemetry.tracer import NOOP_TRACER

__all__ = ["Transport", "LocalTransport", "ProcessTransport"]


@runtime_checkable
class Transport(Protocol):
    """Run a batch of independent node tasks, returning results in order."""

    def run_batch(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        ...

    def close(self) -> None:
        ...


class LocalTransport:
    """Sequential in-process execution (deterministic).

    An optional tracer records one ``transport.batch`` span per
    ``run_batch`` call — the host-side cost of dispatching a level of
    tree-node work, as opposed to the per-node spans the Network records.
    """

    def __init__(self, *, tracer=None) -> None:
        self.tracer = tracer or NOOP_TRACER

    def run_batch(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        with self.tracer.span(
            "transport.batch", cat="transport", n_tasks=len(tasks), backend="local"
        ):
            return [fn(task) for task in tasks]

    def close(self) -> None:  # nothing to release
        pass


def _invoke(args: tuple[Callable[[Any], Any], Any]) -> Any:
    fn, task = args
    return fn(task)


class ProcessTransport:
    """Execute batches on a multiprocessing pool.

    ``fn`` and every task must be picklable.  The pool is created lazily
    and sized to ``n_workers`` (default: CPU count).  ``close()`` must be
    called (or use as a context manager) to reap workers.
    """

    def __init__(self, n_workers: int | None = None, *, tracer=None) -> None:
        if n_workers is not None and n_workers < 1:
            raise TransportError("n_workers must be >= 1")
        self.n_workers = n_workers or mp.cpu_count()
        self.tracer = tracer or NOOP_TRACER
        self._pool: mp.pool.Pool | None = None

    def _ensure_pool(self) -> "mp.pool.Pool":
        if self._pool is None:
            with self.tracer.span(
                "transport.pool_start", cat="transport", n_workers=self.n_workers
            ):
                self._pool = mp.get_context("spawn").Pool(self.n_workers)
        return self._pool

    def run_batch(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        if not tasks:
            return []
        try:
            pool = self._ensure_pool()
            with self.tracer.span(
                "transport.batch", cat="transport", n_tasks=len(tasks), backend="process"
            ):
                return pool.map(_invoke, [(fn, task) for task in tasks])
        except Exception as exc:  # pool failure or unpicklable payloads
            raise TransportError(f"process transport batch failed: {exc}") from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
