"""Execution backends for MRNet node work.

The :class:`Network` decides *what* runs at each tree node; a transport
decides *how*: :class:`LocalTransport` runs tasks sequentially in-process
(deterministic, zero overhead — the default for tests and benches), while
:class:`ProcessTransport` executes each batch through a
``multiprocessing`` pool, which is the honest stand-in for MRNet's
process-per-node when real process isolation matters (failure injection,
pickling discipline, genuinely parallel hosts).

Timeouts
--------
``run_batch`` accepts an optional per-task ``timeout`` (seconds).  The
process transport enforces it *preemptively*: a worker that has not
delivered its result within the deadline (plus a small grace period, so
cooperative in-worker detection wins when the work does finish) has its
slot filled with the :data:`TIMED_OUT` sentinel instead of blocking the
batch forever.  The abandoned worker keeps running until it finishes —
``multiprocessing.Pool`` cannot kill one member — so its eventual result
is discarded; the Network turns the sentinel into a
:class:`~repro.errors.LeafTimeoutError` and applies its retry policy.
The local transport runs everything on the calling thread and cannot
preempt; it relies on the Network's cooperative post-work deadline check.

Self-healing
------------
A SIGKILLed or OOM-killed pool worker is a different failure from a task
that *raises*: the result for whatever it was running never arrives, and
a naive ``pool.map`` blocks forever.  Both pool transports therefore run
every batch through :func:`run_batch_healing`, which polls result
handles instead of blocking on them and watches the pool's worker
processes.  When a worker dies mid-round the engine terminates and
respawns the whole pool (:meth:`ShmTransport._ensure_pool` re-attaches
the current arena segments on the way up), then re-dispatches every task
whose result was lost.  A task that witnesses
:data:`POISON_TASK_DEATHS` pool deaths while outstanding is presumed to
be *killing* the workers and is quarantined: it runs in-process in the
driver, with a :class:`~repro.errors.PoisonTaskWarning` so the
degradation is visible.  Respawns are budgeted per batch; a pool that
keeps dying faster than the budget raises ``TransportError``.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing as mp
import time
import warnings
import weakref
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..errors import OperationCancelledError, PoisonTaskWarning, TransportError
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER

__all__ = [
    "Transport",
    "LocalTransport",
    "ProcessTransport",
    "TIMED_OUT",
    "track_open_pool",
    "untrack_pool",
    "run_batch_healing",
    "POISON_TASK_DEATHS",
]

logger = logging.getLogger(__name__)

#: Extra seconds past ``timeout`` before the process transport gives up on
#: a worker — lets a worker that finishes just past the deadline report a
#: cooperative (and more informative) timeout itself.
TIMEOUT_GRACE = 0.25

#: Seconds between result-handle polls in the healing batch loop.
POOL_POLL_SECONDS = 0.02

#: Pool deaths a task may witness while outstanding before it is presumed
#: poisonous and quarantined to in-process execution.
POISON_TASK_DEATHS = 2


class _TimedOut:
    """Sentinel batch slot: the worker missed its deadline."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TIMED_OUT>"


TIMED_OUT = _TimedOut()


# --------------------------------------------------------------------- #
# atexit pool guard
#
# A transport whose owner forgot (or was interrupted before) ``close()``
# must not leave spawn workers outliving the interpreter.  Every
# transport registers itself here when its pool starts and deregisters
# on close; whatever is left at interpreter exit is terminated — never
# joined, since an abandoned worker may be hung.
# --------------------------------------------------------------------- #

_open_pools: "weakref.WeakSet[Any]" = weakref.WeakSet()
_guard_installed = False


def _reap_open_pools() -> None:  # pragma: no cover - runs at interpreter exit
    for transport in list(_open_pools):
        try:
            transport._reap()
        except Exception:
            pass


def track_open_pool(transport: Any) -> None:
    """Register a transport with a live worker pool (``_reap()`` hook)."""
    global _guard_installed
    if not _guard_installed:
        atexit.register(_reap_open_pools)
        _guard_installed = True
    _open_pools.add(transport)


def untrack_pool(transport: Any) -> None:
    """Deregister after a clean close."""
    _open_pools.discard(transport)


@runtime_checkable
class Transport(Protocol):
    """Run a batch of independent node tasks, returning results in order.

    ``timeout`` bounds one task's execution in seconds (best effort —
    see the module docstring); a timed-out slot holds :data:`TIMED_OUT`.
    ``cancel`` is an optional :class:`~repro.resilience.CancelToken`:
    dispatch loops poll it and unwind with
    :class:`~repro.errors.OperationCancelledError`, abandoning whatever
    is still in flight (workers finish into the void; their results are
    discarded).
    """

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        timeout: float | None = None,
        cancel: Any = None,
    ) -> list[Any]:
        ...

    def close(self) -> None:
        ...


class LocalTransport:
    """Sequential in-process execution (deterministic).

    An optional tracer records one ``transport.batch`` span per
    ``run_batch`` call — the host-side cost of dispatching a level of
    tree-node work, as opposed to the per-node spans the Network records.
    """

    def __init__(self, *, tracer=None) -> None:
        self.tracer = tracer or NOOP_TRACER

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        timeout: float | None = None,
        cancel: Any = None,
    ) -> list[Any]:
        # ``timeout`` is accepted for protocol parity but cannot be
        # enforced preemptively on the calling thread; the Network's
        # cooperative post-work check covers local runs.  ``cancel`` is
        # honoured between tasks — the finest grain a sequential
        # in-process backend can offer.
        with self.tracer.span(
            "transport.batch", cat="transport", n_tasks=len(tasks), backend="local"
        ):
            results = []
            for task in tasks:
                if cancel is not None:
                    cancel.check()
                results.append(fn(task))
            return results

    def close(self) -> None:  # nothing to release
        pass


def _invoke(args: tuple[Callable[[Any], Any], Any]) -> Any:
    fn, task = args
    return fn(task)


class _Unset:
    """Batch slot placeholder: no result yet."""

    __slots__ = ()


_UNSET = _Unset()


def run_batch_healing(
    transport: Any,
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    timeout: float | None,
    backend: str,
    cancel: Any = None,
) -> list[Any]:
    """Dispatch a batch on ``transport``'s pool, surviving worker death.

    The shared engine behind :meth:`ProcessTransport.run_batch` and
    :meth:`ShmTransport.run_batch`.  ``transport`` must expose
    ``_ensure_pool()`` (lazy pool, records ``_known_pids``),
    ``_respawn_pool()``, ``n_workers``, ``_abandoned``,
    ``pool_respawns``/``quarantined_tasks`` counters, and
    ``tracer``/``metrics``.

    Tasks are dispatched individually (``apply_async``) and their handles
    polled, never blocked on: a handle whose worker was SIGKILLed simply
    never becomes ready, and blocking would hang the batch forever.  See
    the module docstring for the full healing policy.

    ``cancel`` (a :class:`~repro.resilience.CancelToken`) is polled each
    loop iteration: a cancelled batch abandons its in-flight handles (the
    workers finish into the void, exactly like a preempted timeout — the
    transport is flagged ``_abandoned`` so a later ``close()`` terminates
    rather than joins) and raises
    :class:`~repro.errors.OperationCancelledError`.
    """
    pool = transport._ensure_pool()
    n = len(tasks)
    results: list[Any] = [_UNSET] * n
    deaths = [0] * n
    pending: dict[int, Any] = {}
    deadline = None if timeout is None else time.monotonic() + timeout + TIMEOUT_GRACE
    # A pool that dies more often than every worker twice (plus slack) in
    # one batch is not going to heal — something environmental is wrong.
    respawn_budget = 2 * transport.n_workers + 4
    respawns = 0

    def _dispatch(i: int) -> None:
        pending[i] = pool.apply_async(_invoke, ((fn, tasks[i]),))

    def _quarantine(i: int) -> None:
        transport.quarantined_tasks += 1
        if transport.metrics.enabled:
            transport.metrics.counter("runtime.poison_tasks").inc()
        transport.tracer.instant(
            "pool.quarantine", cat="transport", backend=backend, task_index=i
        )
        warnings.warn(
            f"task {i} killed {deaths[i]} pool worker(s); quarantined to "
            f"in-process execution in the driver",
            PoisonTaskWarning,
            stacklevel=3,
        )
        results[i] = _invoke((fn, tasks[i]))

    if cancel is not None:
        cancel.check()
    for i in range(n):
        _dispatch(i)
    while pending:
        if cancel is not None and cancel.cancelled:
            # Abandon everything still in flight: the workers will finish
            # into the void and their results be discarded.  The pool may
            # hold a hung task, so mark it terminate-on-close.
            pending.clear()
            transport._abandoned = True
            cancel.check()  # raises with the token's reason
        progressed = False
        for i in sorted(pending):
            handle = pending[i]
            if handle.ready():
                del pending[i]
                results[i] = handle.get()
                progressed = True
        if not pending:
            break
        if _pool_damaged(pool, transport._known_pids):
            victims = sorted(pending)
            pending.clear()
            respawns += 1
            if respawns > respawn_budget:
                raise TransportError(
                    f"{backend} pool died {respawns} times in one batch "
                    f"({n} tasks); giving up"
                )
            logger.warning(
                "%s pool lost worker(s) mid-batch (%d task(s) in flight); "
                "respawning (%d/%d)",
                backend, len(victims), respawns, respawn_budget,
            )
            pool = transport._respawn_pool(backend)
            for i in victims:
                deaths[i] += 1
                if deaths[i] >= POISON_TASK_DEATHS:
                    _quarantine(i)
                else:
                    _dispatch(i)
            continue
        if deadline is not None and time.monotonic() >= deadline:
            for i in sorted(pending):
                results[i] = TIMED_OUT
            pending.clear()
            transport._abandoned = True
            break
        if not progressed:
            time.sleep(POOL_POLL_SECONDS)
    return results


def _pool_damaged(pool: Any, known_pids: set[int]) -> bool:
    """Has any pool worker died since the pool (re)started?

    Two signals, because ``Pool``'s maintainer thread races us: a worker
    process whose ``exitcode`` is set has died and not yet been reaped,
    and a changed pid set means the maintainer already replaced a dead
    worker (whose in-flight task is still lost — replacements only pick
    up *queued* work).
    """
    procs = list(pool._pool)
    if any(p.exitcode is not None for p in procs):
        return True
    return {p.pid for p in procs} != known_pids


class ProcessTransport:
    """Execute batches on a multiprocessing pool.

    ``fn`` and every task must be picklable.  The pool is created lazily
    and sized to ``n_workers`` (default: CPU count).  ``close()`` must be
    called (or use as a context manager) to reap workers.
    """

    def __init__(
        self, n_workers: int | None = None, *, tracer=None, metrics=None
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise TransportError("n_workers must be >= 1")
        self.n_workers = n_workers or mp.cpu_count()
        self.tracer = tracer or NOOP_TRACER
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._pool: mp.pool.Pool | None = None
        self._abandoned = False  # a worker missed a deadline and may hang
        self._known_pids: set[int] = set()
        #: Self-healing activity (see :func:`run_batch_healing`).
        self.pool_respawns = 0
        self.quarantined_tasks = 0

    def _ensure_pool(self) -> "mp.pool.Pool":
        if self._pool is None:
            with self.tracer.span(
                "transport.pool_start", cat="transport", n_workers=self.n_workers
            ):
                self._pool = mp.get_context("spawn").Pool(self.n_workers)
            self._known_pids = {p.pid for p in self._pool._pool}
            track_open_pool(self)
        return self._pool

    def _respawn_pool(self, backend: str = "process") -> "mp.pool.Pool":
        """Terminate the damaged pool and spawn a fresh one."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            untrack_pool(self)
        self.pool_respawns += 1
        if self.metrics.enabled:
            self.metrics.counter("runtime.pool_respawns").inc()
        self.tracer.instant(
            "pool.respawn", cat="transport", backend=backend,
            n_workers=self.n_workers,
        )
        return self._ensure_pool()

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        timeout: float | None = None,
        cancel: Any = None,
    ) -> list[Any]:
        if not tasks:
            return []
        try:
            with self.tracer.span(
                "transport.batch", cat="transport", n_tasks=len(tasks), backend="process"
            ):
                return run_batch_healing(
                    self, fn, tasks, timeout=timeout, backend="process",
                    cancel=cancel,
                )
        except (TransportError, OperationCancelledError):
            raise
        except Exception as exc:  # pool failure or unpicklable payloads
            raise TransportError(f"process transport batch failed: {exc}") from exc

    def close(self) -> None:
        """Reap the pool (idempotent — safe to call any number of times,
        including after a preempted-timeout batch)."""
        if self._pool is not None:
            # A pool with an abandoned (possibly hung) worker cannot be
            # joined without risking a deadlock — terminate it instead.
            if self._abandoned:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
            self._abandoned = False
            untrack_pool(self)

    def _reap(self) -> None:
        """atexit path: terminate unconditionally — never join a possibly
        hung abandoned worker at interpreter shutdown."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
