"""Execution backends for MRNet node work.

The :class:`Network` decides *what* runs at each tree node; a transport
decides *how*: :class:`LocalTransport` runs tasks sequentially in-process
(deterministic, zero overhead — the default for tests and benches), while
:class:`ProcessTransport` executes each batch through a
``multiprocessing`` pool, which is the honest stand-in for MRNet's
process-per-node when real process isolation matters (failure injection,
pickling discipline, genuinely parallel hosts).

Timeouts
--------
``run_batch`` accepts an optional per-task ``timeout`` (seconds).  The
process transport enforces it *preemptively*: a worker that has not
delivered its result within the deadline (plus a small grace period, so
cooperative in-worker detection wins when the work does finish) has its
slot filled with the :data:`TIMED_OUT` sentinel instead of blocking the
batch forever.  The abandoned worker keeps running until it finishes —
``multiprocessing.Pool`` cannot kill one member — so its eventual result
is discarded; the Network turns the sentinel into a
:class:`~repro.errors.LeafTimeoutError` and applies its retry policy.
The local transport runs everything on the calling thread and cannot
preempt; it relies on the Network's cooperative post-work deadline check.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
import weakref
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..errors import TransportError
from ..telemetry.tracer import NOOP_TRACER

__all__ = [
    "Transport",
    "LocalTransport",
    "ProcessTransport",
    "TIMED_OUT",
    "track_open_pool",
    "untrack_pool",
]

#: Extra seconds past ``timeout`` before the process transport gives up on
#: a worker — lets a worker that finishes just past the deadline report a
#: cooperative (and more informative) timeout itself.
TIMEOUT_GRACE = 0.25


class _TimedOut:
    """Sentinel batch slot: the worker missed its deadline."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TIMED_OUT>"


TIMED_OUT = _TimedOut()


# --------------------------------------------------------------------- #
# atexit pool guard
#
# A transport whose owner forgot (or was interrupted before) ``close()``
# must not leave spawn workers outliving the interpreter.  Every
# transport registers itself here when its pool starts and deregisters
# on close; whatever is left at interpreter exit is terminated — never
# joined, since an abandoned worker may be hung.
# --------------------------------------------------------------------- #

_open_pools: "weakref.WeakSet[Any]" = weakref.WeakSet()
_guard_installed = False


def _reap_open_pools() -> None:  # pragma: no cover - runs at interpreter exit
    for transport in list(_open_pools):
        try:
            transport._reap()
        except Exception:
            pass


def track_open_pool(transport: Any) -> None:
    """Register a transport with a live worker pool (``_reap()`` hook)."""
    global _guard_installed
    if not _guard_installed:
        atexit.register(_reap_open_pools)
        _guard_installed = True
    _open_pools.add(transport)


def untrack_pool(transport: Any) -> None:
    """Deregister after a clean close."""
    _open_pools.discard(transport)


@runtime_checkable
class Transport(Protocol):
    """Run a batch of independent node tasks, returning results in order.

    ``timeout`` bounds one task's execution in seconds (best effort —
    see the module docstring); a timed-out slot holds :data:`TIMED_OUT`.
    """

    def run_batch(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], *, timeout: float | None = None
    ) -> list[Any]:
        ...

    def close(self) -> None:
        ...


class LocalTransport:
    """Sequential in-process execution (deterministic).

    An optional tracer records one ``transport.batch`` span per
    ``run_batch`` call — the host-side cost of dispatching a level of
    tree-node work, as opposed to the per-node spans the Network records.
    """

    def __init__(self, *, tracer=None) -> None:
        self.tracer = tracer or NOOP_TRACER

    def run_batch(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], *, timeout: float | None = None
    ) -> list[Any]:
        # ``timeout`` is accepted for protocol parity but cannot be
        # enforced preemptively on the calling thread; the Network's
        # cooperative post-work check covers local runs.
        with self.tracer.span(
            "transport.batch", cat="transport", n_tasks=len(tasks), backend="local"
        ):
            return [fn(task) for task in tasks]

    def close(self) -> None:  # nothing to release
        pass


def _invoke(args: tuple[Callable[[Any], Any], Any]) -> Any:
    fn, task = args
    return fn(task)


class ProcessTransport:
    """Execute batches on a multiprocessing pool.

    ``fn`` and every task must be picklable.  The pool is created lazily
    and sized to ``n_workers`` (default: CPU count).  ``close()`` must be
    called (or use as a context manager) to reap workers.
    """

    def __init__(self, n_workers: int | None = None, *, tracer=None) -> None:
        if n_workers is not None and n_workers < 1:
            raise TransportError("n_workers must be >= 1")
        self.n_workers = n_workers or mp.cpu_count()
        self.tracer = tracer or NOOP_TRACER
        self._pool: mp.pool.Pool | None = None
        self._abandoned = False  # a worker missed a deadline and may hang

    def _ensure_pool(self) -> "mp.pool.Pool":
        if self._pool is None:
            with self.tracer.span(
                "transport.pool_start", cat="transport", n_workers=self.n_workers
            ):
                self._pool = mp.get_context("spawn").Pool(self.n_workers)
            track_open_pool(self)
        return self._pool

    def run_batch(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], *, timeout: float | None = None
    ) -> list[Any]:
        if not tasks:
            return []
        try:
            pool = self._ensure_pool()
            with self.tracer.span(
                "transport.batch", cat="transport", n_tasks=len(tasks), backend="process"
            ):
                if timeout is None:
                    return pool.map(_invoke, [(fn, task) for task in tasks])
                handles = [pool.apply_async(_invoke, ((fn, task),)) for task in tasks]
                deadline = time.monotonic() + timeout + TIMEOUT_GRACE
                results: list[Any] = []
                for handle in handles:
                    remaining = max(0.0, deadline - time.monotonic())
                    try:
                        results.append(handle.get(remaining))
                    except mp.TimeoutError:
                        self._abandoned = True
                        results.append(TIMED_OUT)
                return results
        except TransportError:
            raise
        except Exception as exc:  # pool failure or unpicklable payloads
            raise TransportError(f"process transport batch failed: {exc}") from exc

    def close(self) -> None:
        """Reap the pool (idempotent — safe to call any number of times,
        including after a preempted-timeout batch)."""
        if self._pool is not None:
            # A pool with an abandoned (possibly hung) worker cannot be
            # joined without risking a deadlock — terminate it instead.
            if self._abandoned:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
            self._abandoned = False
            untrack_pool(self)

    def _reap(self) -> None:
        """atexit path: terminate unconditionally — never join a possibly
        hung abandoned worker at interpreter shutdown."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
