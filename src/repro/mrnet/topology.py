"""MRNet tree topologies.

The paper's topologies "have at most three levels, and each intermediate
process has a 256-way fanout of child processes whenever possible" (§5.1),
with one compute node per process.  Table 1 shows the resulting internal
process counts: 0 up to 128 leaves (a flat root→leaves tree), then
``ceil(leaves / 256)`` internal processes (2 at 512 leaves … 32 at 8192).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError

__all__ = ["Topology", "PAPER_FANOUT"]

#: The 256-way fanout used for all paper experiments.
PAPER_FANOUT: int = 256


@dataclass
class Topology:
    """A rooted process tree.

    Node ids are dense integers: 0 is the root, internal nodes follow
    level by level, leaves come last.  ``children[i]`` lists node ``i``'s
    children in order; ``parent[i]`` is ``-1`` for the root.
    """

    parent: list[int]
    children: list[list[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.parent)
        if n == 0:
            raise TopologyError("topology needs at least a root")
        if self.parent[0] != -1:
            raise TopologyError("node 0 must be the root (parent -1)")
        if not self.children:
            self.children = [[] for _ in range(n)]
            for node, par in enumerate(self.parent):
                if par == -1:
                    continue
                if not 0 <= par < n:
                    raise TopologyError(f"node {node} has out-of-range parent {par}")
                self.children[par].append(node)
        roots = [i for i, p in enumerate(self.parent) if p == -1]
        if roots != [0]:
            raise TopologyError(f"expected exactly one root (node 0), found {roots}")
        # Reject cycles / unreachable nodes.
        seen = set()
        stack = [0]
        while stack:
            node = stack.pop()
            if node in seen:
                raise TopologyError(f"node {node} reachable twice (cycle?)")
            seen.add(node)
            stack.extend(self.children[node])
        if len(seen) != n:
            raise TopologyError(f"{n - len(seen)} nodes unreachable from the root")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def flat(cls, n_leaves: int) -> "Topology":
        """Root with ``n_leaves`` direct children (the partitioner's shape:
        "the partitioner uses a flat topology as is appropriate for the
        size of its task", §3.1.3)."""
        if n_leaves < 1:
            raise TopologyError("flat topology needs at least one leaf")
        return cls(parent=[-1] + [0] * n_leaves)

    @classmethod
    def paper_style(cls, n_leaves: int, fanout: int = PAPER_FANOUT) -> "Topology":
        """The evaluation topology: fewest levels with ``fanout``-way nodes.

        Up to ``fanout`` leaves the tree is flat.  Beyond that, internal
        levels of ``ceil(below / fanout)`` processes are inserted until
        the root's fanout fits — with the paper's 256-way fanout this is
        exactly the ≤3-level shape of Table 1 (2 internals at 512 leaves,
        8 at 2048, 16 at 4096, 32 at 8192); smaller fanouts grow deeper
        trees instead of failing.
        """
        if n_leaves < 1:
            raise TopologyError("need at least one leaf")
        if fanout < 2:
            raise TopologyError("fanout must be >= 2")
        if n_leaves <= fanout:
            return cls.flat(n_leaves)
        # Internal layer sizes from just-above-the-leaves up to just-below
        # the root.
        layers_up: list[int] = []
        below = n_leaves
        while below > fanout:
            below = -(-below // fanout)
            layers_up.append(below)
        layers_top_down = list(reversed(layers_up))

        parent: list[int] = [-1]
        prev_level = [0]
        for size in layers_top_down + [n_leaves]:
            this_level = []
            for i in range(size):
                parent.append(prev_level[i % len(prev_level)])
                this_level.append(len(parent) - 1)
            prev_level = this_level
        return cls(parent=parent)

    @classmethod
    def from_fanouts(cls, fanouts: list[int]) -> "Topology":
        """A uniform tree: level i fans out ``fanouts[i]`` ways."""
        if not fanouts or any(f < 1 for f in fanouts):
            raise TopologyError("fanouts must be positive")
        parent = [-1]
        frontier = [0]
        for f in fanouts:
            next_frontier = []
            for node in frontier:
                for _ in range(f):
                    parent.append(node)
                    next_frontier.append(len(parent) - 1)
            frontier = next_frontier
        return cls(parent=parent)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return len(self.parent)

    @property
    def root(self) -> int:
        return 0

    def leaves(self) -> list[int]:
        """Leaf node ids in id order."""
        return [i for i in range(self.n_nodes) if not self.children[i]]

    def internal_nodes(self) -> list[int]:
        """Non-root, non-leaf node ids."""
        return [
            i
            for i in range(1, self.n_nodes)
            if self.children[i]
        ]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves())

    @property
    def n_internal(self) -> int:
        return len(self.internal_nodes())

    def depth(self) -> int:
        """Number of levels (root-only tree has depth 1)."""
        best = 1
        level = [0]
        d = 1
        while level:
            nxt = [c for node in level for c in self.children[node]]
            if nxt:
                d += 1
                best = d
            level = nxt
        return best

    def levels(self) -> list[list[int]]:
        """Nodes grouped by level, root first."""
        out = []
        level = [0]
        while level:
            out.append(level)
            level = [c for node in level for c in self.children[node]]
        return out

    def level_of(self) -> list[int]:
        """Level index of every node (root = 0)."""
        lev = [0] * self.n_nodes
        for depth, nodes in enumerate(self.levels()):
            for node in nodes:
                lev[node] = depth
        return lev

    def max_fanout(self) -> int:
        return max((len(c) for c in self.children), default=0)

    def describe(self) -> str:
        """One-line summary, e.g. ``3 levels / 1 root / 8 internal / 2048 leaves``."""
        return (
            f"{self.depth()} levels / 1 root / {self.n_internal} internal / "
            f"{self.n_leaves} leaves (max fanout {self.max_fanout()})"
        )
