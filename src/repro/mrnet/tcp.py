"""TCP transport: the fault-tolerant network boundary for multi-host trees.

Mr. Scan runs its MRNet reduction tree over real sockets across up to
8,192 Titan nodes (§2, §4); every other transport here is confined to one
machine.  This module is the scale-out boundary: a coordinator-side
:class:`TcpTransport` implementing the :class:`~repro.mrnet.transport.Transport`
protocol, plus :func:`run_worker_agent` — the ``mrscan worker`` process
that connects in (possibly from another host), handshakes, and executes
leaf tasks shipped as length-prefixed framed messages.

Wire protocol
-------------
Every frame is ``!4sBI`` (magic ``MRSC``, type byte, payload length) +
payload, capped at :data:`MAX_FRAME_BYTES`.  A connection opens with a
JSON handshake — agent sends ``HELLO`` (protocol version, worker id,
pid, optional config fingerprint, reconnect count), the coordinator
answers ``WELCOME`` (session id, heartbeat interval) or ``REJECT``
(version or fingerprint mismatch; the agent exits rather than retry a
hopeless pairing).  ``TASK``/``RESULT``/``ERROR`` frames carry an 8-byte
sequence id followed by a pickle; ``HEARTBEAT`` is empty and flows
agent→coordinator on a fixed interval; ``SHUTDOWN`` asks the agent to
exit cleanly.

Robustness model (mirrors :func:`~repro.mrnet.transport.run_batch_healing`)
---------------------------------------------------------------------------
* **Liveness** — a connection whose last frame (result *or* heartbeat)
  is older than ``heartbeat_interval × HEARTBEAT_MISS_LIMIT`` is declared
  dead mid-round; its in-flight task is re-dispatched to another worker.
* **Deadlines** — ``run_batch(timeout=...)`` fills still-pending slots
  with :data:`~repro.mrnet.transport.TIMED_OUT` after the deadline (plus
  the shared grace); the connection executing an abandoned task is closed
  (and its self-spawned agent killed) so a hung task cannot poison later
  batches — the agent reconnects or is respawned fresh.
* **Reconnect** — agents reconnect with exponential backoff + jitter;
  the coordinator treats a reconnecting worker as a new connection and
  counts it in ``tcp.reconnects``.
* **Quarantine** — a task that loses its connection
  :data:`~repro.mrnet.transport.POISON_TASK_DEATHS` times is presumed to
  be killing workers and runs in-process in the driver (with the same
  :class:`~repro.errors.PoisonTaskWarning` the pool transports emit).
* **Graceful degradation** — when no worker is connected and none can
  come back (spawn budget exhausted, or external-agent mode with nothing
  dialing in for ``connect_wait`` seconds), remaining tasks run
  in-process so a run *always* completes.

Deterministic network faults
----------------------------
The transport peeks at the fault spec riding in each
``_guarded_apply`` task tuple and applies the network kinds *at the
framing layer*, once per task per batch: ``disconnect`` severs the
worker's connection instead of sending, ``drop`` loses the send and
re-dispatches after :data:`DROP_RESEND_SECONDS`, ``netdelay`` sleeps
before the send.  Seeded :class:`~repro.resilience.FaultPlan`\\ s thus
reproduce the same packet-level misbehaviour on every run.

Agent modes
-----------
By default the transport self-spawns ``n_workers`` agent subprocesses
(``python -m repro worker --connect ...``) on localhost — single-machine
runs need no second terminal.  Set ``MRSCAN_TCP_SPAWN=0`` and
``MRSCAN_TCP_PORT=<port>`` to listen for external agents instead (the
multi-host mode); ``MRSCAN_TCP_WAIT`` bounds how long a batch waits for
the first one.

Telemetry lands on ``tcp.*``: byte/frame counters both ways, round-trip
percentiles (``tcp.rtt_seconds``, a :class:`~repro.telemetry.metrics.Quantile`),
reconnects, missed heartbeats, re-dispatches, quarantines, respawns,
injected fault counts, and in-process fallback tasks.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import random
import socket
import struct
import subprocess
import sys
import threading
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import FrameError, PoisonTaskWarning, TransportError
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .transport import (
    POISON_TASK_DEATHS,
    TIMED_OUT,
    TIMEOUT_GRACE,
    track_open_pool,
    untrack_pool,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "NET_FAULT_KINDS",
    "TcpTransport",
    "run_worker_agent",
    "send_frame",
    "recv_frame",
]

logger = logging.getLogger(__name__)

#: Handshake protocol version; a mismatching agent is rejected outright.
PROTOCOL_VERSION = 1

#: Frame header: magic, frame type, payload length.
MAGIC = b"MRSC"
_HEADER = struct.Struct("!4sBI")
_SEQ = struct.Struct("!Q")

#: Hard cap on one frame's payload — anything bigger is a protocol error
#: (a healthy task/result pickle is megabytes at most).
MAX_FRAME_BYTES = 1 << 30

# Frame types.
HELLO = 1
WELCOME = 2
REJECT = 3
TASK = 4
RESULT = 5
ERROR = 6
HEARTBEAT = 7
SHUTDOWN = 8

#: Fault kinds the transport injects at the framing layer (the worker's
#: ``_guarded_apply`` treats them as no-ops — recovery is wire-level).
NET_FAULT_KINDS = ("disconnect", "drop", "netdelay")

#: Agents send a heartbeat this often (seconds); the coordinator may
#: override per session via the WELCOME payload.
HEARTBEAT_INTERVAL = 0.25
#: Missed-heartbeat multiplier before a silent connection is declared dead.
HEARTBEAT_MISS_LIMIT = 8

#: How long a batch waits for worker connections before degrading to
#: in-process execution (overridable via ``MRSCAN_TCP_WAIT``).
CONNECT_WAIT_SECONDS = 10.0

#: An injected ``drop`` loses the send; the task is re-dispatched after
#: this long (the stand-in for a sender-side retransmit timer).
DROP_RESEND_SECONDS = 0.05

#: Seconds between poll iterations in the dispatch loop.
POLL_SECONDS = 0.01

#: Agent reconnect backoff: ``base * 2^attempt`` capped, plus jitter.
RECONNECT_BASE_SECONDS = 0.05
RECONNECT_CAP_SECONDS = 1.0
RECONNECT_JITTER = 0.25
#: Default reconnect budget before an agent gives up (≈ one minute of
#: capped backoff — enough for a coordinator restart, finite so orphaned
#: agents exit instead of spinning forever).
DEFAULT_MAX_RECONNECTS = 60

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #


def send_frame(sock: socket.socket, ftype: int, payload: bytes = b"") -> int:
    """Write one frame; returns the bytes put on the wire."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    data = _HEADER.pack(MAGIC, ftype, len(payload)) + payload
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame
    boundary (zero bytes read), :class:`FrameError` on EOF mid-read."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf:
                raise FrameError(
                    f"torn frame: connection closed after {len(buf)} of {n} bytes"
                )
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    magic, ftype, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    if length == 0:
        return ftype, b""
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise FrameError(
            f"torn frame: connection closed before any of the {length} "
            "announced payload bytes arrived"
        )
    return ftype, payload


def _json_frame(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _parse_json_frame(payload: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed handshake payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("handshake payload must be a JSON object")
    return obj


# --------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------- #


class _Conn:
    """One accepted worker connection (coordinator side)."""

    __slots__ = (
        "sock", "addr", "worker_id", "alive", "last_seen", "busy_seq",
        "write_lock", "agent_index",
    )

    def __init__(self, sock: socket.socket, addr, worker_id: str) -> None:
        self.sock = sock
        self.addr = addr
        self.worker_id = worker_id
        self.alive = True
        self.last_seen = time.monotonic()
        #: Sequence id of the task this worker is executing (None = idle).
        self.busy_seq: int | None = None
        self.write_lock = threading.Lock()
        #: Index into the transport's spawned-agent table, if self-spawned.
        self.agent_index: int | None = None

    def send(self, ftype: int, payload: bytes = b"") -> int:
        with self.write_lock:
            return send_frame(self.sock, ftype, payload)

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Pending:
    """Batch slot placeholder: no result yet."""

    __slots__ = ()


_PENDING = _Pending()


class TcpTransport:
    """Dispatch MRNet node work to worker agents over TCP sockets.

    Parameters
    ----------
    n_workers:
        Worker agents to self-spawn (and the healing respawn budget's
        base).  Ignored for sizing when ``spawn_agents`` is False —
        external agents connect on their own schedule.
    host, port:
        Listen address.  Default ``127.0.0.1`` and an ephemeral port
        (``MRSCAN_TCP_PORT`` overrides — required for external agents,
        which must be told where to dial).
    spawn_agents:
        Self-spawn localhost agents (default True; ``MRSCAN_TCP_SPAWN=0``
        selects listen-only multi-host mode).
    connect_wait:
        Seconds a batch tolerates having *no* worker connection before
        degrading to in-process execution (``MRSCAN_TCP_WAIT``).
    fingerprint:
        Optional config fingerprint; an agent presenting a *different*
        non-empty fingerprint is rejected at handshake (both sides
        empty/absent always match).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        spawn_agents: bool | None = None,
        connect_wait: float | None = None,
        fingerprint: str | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        tracer=None,
        metrics=None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise TransportError("n_workers must be >= 1")
        self.n_workers = n_workers or (os.cpu_count() or 2)
        self.host = host
        if port is None:
            port = int(os.environ.get("MRSCAN_TCP_PORT", "0") or 0)
        self.port = port
        if spawn_agents is None:
            spawn_agents = os.environ.get("MRSCAN_TCP_SPAWN", "1").strip() != "0"
        self._spawn = bool(spawn_agents)
        if connect_wait is None:
            connect_wait = float(
                os.environ.get("MRSCAN_TCP_WAIT", "") or CONNECT_WAIT_SECONDS
            )
        self.connect_wait = float(connect_wait)
        self.fingerprint = fingerprint or os.environ.get("MRSCAN_TCP_FINGERPRINT", "")
        self.heartbeat_interval = float(heartbeat_interval)
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.session_id = uuid.uuid4().hex

        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._conns: list[_Conn] = []
        self._results: dict[int, tuple[int, bytes]] = {}
        self._next_seq = 0
        self._agents: list[subprocess.Popen | None] = []
        self.closed = False
        #: Counter attributes shared with the pool transports so callers
        #: (and tests) can probe healing activity uniformly.
        self.pool_respawns = 0
        self.quarantined_tasks = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_listening(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self.port))
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"tcp transport cannot listen on {self.host}:{self.port}: {exc}"
            ) from exc
        listener.listen(128)
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="mrscan-tcp-accept", daemon=True
        )
        self._accept_thread.start()
        track_open_pool(self)
        self.tracer.instant(
            "tcp.listen", cat="transport", host=self.host, port=self.port
        )
        if self._spawn:
            for idx in range(self.n_workers):
                self._agents.append(self._spawn_agent(idx))

    def _spawn_agent(self, idx: int) -> subprocess.Popen:
        """Start one localhost worker agent subprocess."""
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        env["MRSCAN_TCP_AGENT"] = "1"
        cmd = [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"{self.host}:{self.port}",
            "--worker-id", f"spawn-{idx}-{os.getpid()}",
        ]
        if self.fingerprint:
            cmd += ["--fingerprint", self.fingerprint]
        return subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,
        )

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self.closed and listener is not None:
            try:
                sock, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection,
                args=(sock, addr),
                name="mrscan-tcp-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        """Handshake one inbound socket, then pump its frames until EOF."""
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(5.0)
            frame = recv_frame(sock)
            if frame is None or frame[0] != HELLO:
                raise FrameError("expected HELLO as the first frame")
            hello = _parse_json_frame(frame[1])
            reason = self._reject_reason(hello)
            if reason is not None:
                send_frame(sock, REJECT, _json_frame({"reason": reason}))
                self._count("tcp.handshake_rejects")
                logger.warning("rejected worker from %s: %s", addr, reason)
                sock.close()
                return
            send_frame(
                sock,
                WELCOME,
                _json_frame(
                    {
                        "version": PROTOCOL_VERSION,
                        "session_id": self.session_id,
                        "heartbeat_interval": self.heartbeat_interval,
                    }
                ),
            )
        except (FrameError, OSError, socket.timeout) as exc:
            logger.warning("handshake with %s failed: %s", addr, exc)
            try:
                sock.close()
            except OSError:
                pass
            return
        sock.settimeout(None)
        conn = _Conn(sock, addr, str(hello.get("worker_id", "?")))
        if conn.worker_id.startswith("spawn-"):
            try:
                conn.agent_index = int(conn.worker_id.split("-")[1])
            except (IndexError, ValueError):
                pass
        if int(hello.get("reconnects", 0)) > 0:
            self._count("tcp.reconnects")
        with self._cond:
            self._conns.append(conn)
            self._cond.notify_all()
        self._count("tcp.connections")
        self.tracer.instant(
            "tcp.connect", cat="transport", worker_id=conn.worker_id
        )
        self._reader_loop(conn)

    def _reject_reason(self, hello: dict[str, Any]) -> str | None:
        if self.closed:
            return "coordinator is shutting down"
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            return (
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, worker speaks {version}"
            )
        theirs = str(hello.get("fingerprint", "") or "")
        if self.fingerprint and theirs and theirs != self.fingerprint:
            return "config fingerprint mismatch"
        return None

    def _reader_loop(self, conn: _Conn) -> None:
        """Pump frames off one worker connection until it dies."""
        while conn.alive and not self.closed:
            try:
                frame = recv_frame(conn.sock)
            except (FrameError, OSError):
                break
            if frame is None:
                break
            ftype, payload = frame
            conn.last_seen = time.monotonic()
            if self.metrics.enabled:
                self.metrics.counter("tcp.bytes_received").inc(
                    _HEADER.size + len(payload)
                )
                self.metrics.counter("tcp.frames_received").inc()
            if ftype == HEARTBEAT:
                continue
            if ftype in (RESULT, ERROR) and len(payload) >= _SEQ.size:
                seq = _SEQ.unpack(payload[: _SEQ.size])[0]
                with self._cond:
                    self._results[seq] = (ftype, payload[_SEQ.size :])
                    if conn.busy_seq == seq:
                        conn.busy_seq = None
                    self._cond.notify_all()
        with self._cond:
            conn.alive = False
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        timeout: float | None = None,
        cancel: Any = None,
    ) -> list[Any]:
        if not tasks:
            return []
        if self.closed:
            raise TransportError("tcp transport is closed")
        self._ensure_listening()
        with self.tracer.span(
            "transport.batch", cat="transport", n_tasks=len(tasks), backend="tcp"
        ):
            return self._run_batch(fn, tasks, timeout, cancel)

    @staticmethod
    def _net_fault(task: Any) -> dict[str, Any] | None:
        """The network fault spec riding in a ``_guarded_apply`` tuple,
        if any — the transport injects these at the framing layer."""
        if (
            isinstance(task, tuple)
            and len(task) == 4
            and isinstance(task[2], dict)
            and task[2].get("kind") in NET_FAULT_KINDS
        ):
            return task[2]
        return None

    def _run_batch(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        timeout: float | None,
        cancel: Any = None,
    ) -> list[Any]:
        n = len(tasks)
        results: list[Any] = [_PENDING] * n
        deaths = [0] * n
        queue: list[int] = list(range(n))
        task_of: dict[int, int] = {}  # seq -> task index
        seq_of: dict[int, int] = {}  # task index -> seq
        sent_at: dict[int, float] = {}
        dropped_until: dict[int, float] = {}
        consumed_faults: set[int] = set()
        deadline = None if timeout is None else time.monotonic() + timeout + TIMEOUT_GRACE
        respawn_budget = 2 * self.n_workers + 4
        respawns = 0
        done = 0
        last_capacity = time.monotonic()

        def _finish(i: int, value: Any) -> None:
            nonlocal done
            if results[i] is _PENDING:
                results[i] = value
                done += 1

        def _quarantine(i: int) -> None:
            self.quarantined_tasks += 1
            self._count("tcp.quarantined_tasks")
            if self.metrics.enabled:
                self.metrics.counter("runtime.poison_tasks").inc()
            self.tracer.instant(
                "pool.quarantine", cat="transport", backend="tcp", task_index=i
            )
            warnings.warn(
                f"task {i} lost its worker connection {deaths[i]} time(s); "
                "quarantined to in-process execution in the driver",
                PoisonTaskWarning,
                stacklevel=4,
            )
            _finish(i, fn(tasks[i]))

        while done < n:
            if cancel is not None and cancel.cancelled:
                # Abandon everything still outstanding: shed connections
                # stuck on cancelled work (their agents respawn fresh) and
                # unwind — the caller rolls back, nothing is delivered.
                with self._lock:
                    stuck = [
                        c for c in self._conns
                        if c.busy_seq is not None and c.busy_seq in task_of
                    ]
                for conn in stuck:
                    self._abandon_conn(conn)
                cancel.check()  # raises with the token's reason
            now = time.monotonic()
            progressed = False

            # Harvest delivered results (and late results for abandoned
            # sequences, which free their connection but are discarded).
            raised: BaseException | None = None
            with self._lock:
                drained = list(self._results.items())
                self._results.clear()
            # Results for sequences no batch is waiting on (work abandoned
            # by an earlier deadline) freed their connection in the reader
            # and are discarded here.
            arrived = [(seq, r) for seq, r in drained if seq in task_of]
            for seq, (ftype, blob) in arrived:
                i = task_of.pop(seq)
                seq_of.pop(i, None)
                t_sent = sent_at.pop(seq, None)
                if t_sent is not None and self.metrics.enabled:
                    self.metrics.quantile("tcp.rtt_seconds").observe(now - t_sent)
                progressed = True
                if ftype == RESULT:
                    _finish(i, pickle.loads(blob))
                    continue
                try:
                    exc = pickle.loads(blob)
                except Exception:
                    exc = TransportError("worker reported an unpicklable error")
                if not isinstance(exc, BaseException):
                    exc = TransportError(f"worker reported error: {exc!r}")
                raised = exc
            if raised is not None:
                raise raised

            # Declare silent connections dead (missed heartbeats).
            with self._lock:
                conns = list(self._conns)
            for conn in conns:
                if conn.alive and (
                    now - conn.last_seen
                    > self.heartbeat_interval * HEARTBEAT_MISS_LIMIT
                ):
                    self._count("tcp.heartbeats_missed")
                    logger.warning(
                        "worker %s silent for %.2fs; declaring it dead",
                        conn.worker_id, now - conn.last_seen,
                    )
                    conn.close()

            # Reap dead connections: re-dispatch (or quarantine) their
            # in-flight tasks, prune them from the table.
            to_quarantine: list[int] = []
            with self._lock:
                for conn in self._conns:
                    if conn.alive:
                        continue
                    seq = conn.busy_seq
                    conn.busy_seq = None
                    if seq is None or seq not in task_of:
                        continue
                    i = task_of.pop(seq)
                    seq_of.pop(i, None)
                    sent_at.pop(seq, None)
                    deaths[i] += 1
                    self._count("tcp.redispatched_tasks")
                    logger.warning(
                        "lost connection to %s mid-task; re-dispatching task %d "
                        "(death %d)",
                        conn.worker_id, i, deaths[i],
                    )
                    if deaths[i] >= POISON_TASK_DEATHS:
                        to_quarantine.append(i)
                    else:
                        queue.append(i)
                self._conns = [c for c in self._conns if c.alive]
            for i in to_quarantine:
                _quarantine(i)
                progressed = True

            # Respawn self-spawned agents that died (budgeted per batch).
            if self._spawn:
                for idx, proc in enumerate(self._agents):
                    if proc is None or proc.poll() is None:
                        continue
                    respawns += 1
                    self.pool_respawns += 1
                    if respawns > respawn_budget:
                        raise TransportError(
                            f"tcp worker agents died {respawns} times in one "
                            f"batch ({n} tasks); giving up"
                        )
                    self._count("tcp.agent_respawns")
                    self.tracer.instant(
                        "pool.respawn", cat="transport", backend="tcp", agent=idx
                    )
                    self._agents[idx] = self._spawn_agent(idx)

            # Re-queue tasks whose injected drop timer expired.
            for i, t in list(dropped_until.items()):
                if now >= t:
                    del dropped_until[i]
                    queue.append(i)

            # Dispatch queued tasks to idle live connections, applying any
            # planned network fault at the framing layer (once per task).
            with self._lock:
                idle = [c for c in self._conns if c.alive and c.busy_seq is None]
            for conn in idle:
                if not queue:
                    break
                i = queue.pop(0)
                spec = self._net_fault(tasks[i])
                if spec is not None and i not in consumed_faults:
                    consumed_faults.add(i)
                    kind = spec["kind"]
                    self._count(f"tcp.injected.{kind}")
                    self.tracer.instant(
                        "fault", cat="transport", backend="tcp", kind=kind,
                        task_index=i,
                    )
                    if kind == "disconnect":
                        # Sever the link instead of sending; the agent
                        # reconnects with backoff, the task re-queues.
                        conn.close()
                        queue.append(i)
                        continue
                    if kind == "drop":
                        # The send is lost in flight; re-dispatch after
                        # the retransmit window.
                        dropped_until[i] = now + DROP_RESEND_SECONDS
                        continue
                    # netdelay: a slow link — stall the send.
                    time.sleep(float(spec.get("delay_seconds", 0.0)))
                try:
                    blob = pickle.dumps((fn, tasks[i]), protocol=_PICKLE_PROTO)
                except Exception as exc:
                    raise TransportError(
                        f"tcp transport cannot pickle task {i}: {exc}"
                    ) from exc
                with self._lock:
                    self._next_seq += 1
                    seq = self._next_seq
                    # Register before sending: a fast worker can answer
                    # before this thread resumes, and the reader must find
                    # the connection already marked busy — otherwise the
                    # busy flag set after the fact would never be cleared
                    # and the connection would idle out of rotation.
                    conn.busy_seq = seq
                    task_of[seq] = i
                    seq_of[i] = seq
                    sent_at[seq] = time.monotonic()
                try:
                    nbytes = conn.send(TASK, _SEQ.pack(seq) + blob)
                except (OSError, FrameError):
                    with self._lock:
                        if conn.busy_seq == seq:
                            conn.busy_seq = None
                        task_of.pop(seq, None)
                        seq_of.pop(i, None)
                        sent_at.pop(seq, None)
                    conn.close()
                    queue.append(i)
                    continue
                if self.metrics.enabled:
                    self.metrics.counter("tcp.bytes_sent").inc(nbytes)
                    self.metrics.counter("tcp.frames_sent").inc()
                progressed = True

            if done >= n:
                break

            # Deadline: fill still-pending slots with TIMED_OUT and shed
            # the connections executing abandoned work.
            if deadline is not None and now >= deadline:
                abandoned = set(queue) | set(dropped_until) | set(task_of.values())
                for i in abandoned:
                    _finish(i, TIMED_OUT)
                with self._lock:
                    stuck = [
                        c for c in self._conns
                        if c.busy_seq is not None and c.busy_seq in task_of
                    ]
                for conn in stuck:
                    self._abandon_conn(conn)
                break

            # Graceful degradation: no worker connected and none on the
            # way — run what's left in-process so the run completes.
            with self._lock:
                any_live = any(c.alive for c in self._conns)
            spawn_pending = self._spawn and any(
                p is not None and p.poll() is None for p in self._agents
            )
            if any_live or spawn_pending:
                last_capacity = now
            elif (queue or dropped_until) and now - last_capacity > self.connect_wait:
                leftovers = sorted(set(queue) | set(dropped_until))
                queue.clear()
                dropped_until.clear()
                warnings.warn(
                    f"no tcp workers available for {self.connect_wait:.1f}s; "
                    f"running {len(leftovers)} task(s) in-process in the driver",
                    PoisonTaskWarning,
                    stacklevel=3,
                )
                for i in leftovers:
                    self._count("tcp.fallback_tasks")
                    _finish(i, fn(tasks[i]))
                continue

            if not progressed:
                with self._cond:
                    self._cond.wait(POLL_SECONDS)
        return results

    def _abandon_conn(self, conn: _Conn) -> None:
        """Shed a connection stuck on abandoned (timed-out) work: close it
        and, for a self-spawned agent, kill the process so the respawn
        path brings up a fresh one — the closest analogue of terminating
        a hung pool worker."""
        conn.close()
        if conn.agent_index is not None and conn.agent_index < len(self._agents):
            proc = self._agents[conn.agent_index]
            if proc is not None and proc.poll() is None:
                proc.kill()

    def _count(self, name: str) -> None:
        if self.metrics.enabled:
            self.metrics.counter(name).inc()

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down agents and sockets (idempotent)."""
        if self.closed:
            return
        self.closed = True
        with self._cond:
            conns = list(self._conns)
            self._conns = []
            self._cond.notify_all()
        for conn in conns:
            try:
                conn.send(SHUTDOWN)
            except (OSError, FrameError):
                pass
            conn.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None
        for idx, proc in enumerate(self._agents):
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            self._agents[idx] = None
        untrack_pool(self)

    def _reap(self) -> None:
        """atexit path: tear everything down without joining anything."""
        self.closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            conns = list(self._conns)
            self._conns = []
        for conn in conns:
            conn.close()
        for idx, proc in enumerate(self._agents):
            if proc is not None and proc.poll() is None:
                proc.kill()
            self._agents[idx] = None

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Worker agent side
# --------------------------------------------------------------------- #


def _backoff_sleep(attempt: int) -> None:
    delay = min(
        RECONNECT_CAP_SECONDS, RECONNECT_BASE_SECONDS * (2 ** min(attempt, 10))
    )
    time.sleep(delay * (1.0 + RECONNECT_JITTER * random.random()))


def _serve_agent_connection(
    sock: socket.socket, worker_id: str, fingerprint: str, reconnects: int
) -> int | None:
    """One connected session: handshake, then execute tasks until the
    connection ends.  Returns an exit code to stop the agent, or ``None``
    to reconnect."""
    send_frame(
        sock,
        HELLO,
        _json_frame(
            {
                "version": PROTOCOL_VERSION,
                "worker_id": worker_id,
                "pid": os.getpid(),
                "fingerprint": fingerprint,
                "reconnects": reconnects,
            }
        ),
    )
    sock.settimeout(10.0)
    frame = recv_frame(sock)
    if frame is None:
        return None
    ftype, payload = frame
    if ftype == REJECT:
        reason = _parse_json_frame(payload).get("reason", "unspecified")
        print(f"worker {worker_id} rejected: {reason}", file=sys.stderr)
        return 1
    if ftype != WELCOME:
        raise FrameError(f"expected WELCOME or REJECT, got frame type {ftype}")
    welcome = _parse_json_frame(payload)
    interval = float(welcome.get("heartbeat_interval", HEARTBEAT_INTERVAL))
    sock.settimeout(None)

    stop = threading.Event()
    write_lock = threading.Lock()

    def _heartbeat() -> None:
        while not stop.wait(interval):
            try:
                with write_lock:
                    send_frame(sock, HEARTBEAT)
            except OSError:
                return

    beat = threading.Thread(target=_heartbeat, name="mrscan-heartbeat", daemon=True)
    beat.start()
    try:
        while True:
            frame = recv_frame(sock)
            if frame is None:
                return None
            ftype, payload = frame
            if ftype == SHUTDOWN:
                return 0
            if ftype != TASK or len(payload) < _SEQ.size:
                continue
            seq = payload[: _SEQ.size]
            try:
                fn, task = pickle.loads(payload[_SEQ.size :])
                out = fn(task)
                body = pickle.dumps(out, protocol=_PICKLE_PROTO)
                rtype = RESULT
            except BaseException as exc:
                try:
                    body = pickle.dumps(exc, protocol=_PICKLE_PROTO)
                except Exception:
                    body = pickle.dumps(
                        TransportError(f"{type(exc).__name__}: {exc}"),
                        protocol=_PICKLE_PROTO,
                    )
                rtype = ERROR
            with write_lock:
                send_frame(sock, rtype, seq + body)
    except (FrameError, OSError):
        return None
    finally:
        stop.set()


def run_worker_agent(
    address: str,
    *,
    worker_id: str | None = None,
    fingerprint: str | None = None,
    max_reconnects: int | None = DEFAULT_MAX_RECONNECTS,
) -> int:
    """The ``mrscan worker`` main loop: dial the coordinator, execute
    framed tasks, reconnect with exponential backoff + jitter when the
    connection drops.  Exit codes: 0 clean shutdown, 1 rejected at
    handshake, 2 reconnect budget exhausted."""
    # Mark this process as a TCP agent so injected ``kill`` faults know a
    # real SIGKILL is safe here (the coordinator survives and recovers).
    os.environ["MRSCAN_TCP_AGENT"] = "1"
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        raise TransportError(
            f"worker address must be HOST:PORT, got {address!r}"
        )
    port = int(port_text)
    worker_id = worker_id or f"worker-{socket.gethostname()}-{os.getpid()}"
    fingerprint = fingerprint or os.environ.get("MRSCAN_TCP_FINGERPRINT", "")
    reconnects = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            reconnects += 1
            if max_reconnects is not None and reconnects > max_reconnects:
                print(
                    f"worker {worker_id}: gave up after {reconnects - 1} "
                    "reconnect attempts",
                    file=sys.stderr,
                )
                return 2
            _backoff_sleep(reconnects)
            continue
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            code = _serve_agent_connection(sock, worker_id, fingerprint, reconnects)
        except (FrameError, OSError, socket.timeout):
            code = None
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if code is not None:
            return code
        reconnects += 1
        if max_reconnects is not None and reconnects > max_reconnects:
            print(
                f"worker {worker_id}: gave up after {reconnects - 1} "
                "reconnect attempts",
                file=sys.stderr,
            )
            return 2
        _backoff_sleep(reconnects)
