"""The MRNet network: leaf maps, upstream reduction, downstream multicast.

A :class:`Network` binds a :class:`Topology` to a transport and offers the
three collective operations Mr. Scan is built from:

``map_leaves``
    Run a function on every leaf (the GPU clustering, the partitioner's
    local histogram/write steps).

``reduce``
    Carry one payload per leaf up the tree, applying a filter at every
    internal node and the root (histogram reduction; progressive cluster
    merge, "the clusters are progressively merged by each level of
    intermediate processes until they reach the root", §3).

``multicast``
    Distribute a root payload down to all leaves, optionally splitting it
    per child (partition boundaries; global cluster IDs in the sweep,
    "with each level of the tree reversing the merge operation", §3.4).

Every operation returns ``(result, NetworkTrace)``; traces capture packet
counts, byte volumes, and per-node filter compute seconds for the perf
model.  Pass a :class:`repro.telemetry.Tracer` to additionally record
per-node compute *spans* (one per leaf task / per internal filter
application, on the network's logical pid track) and fault instants.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from ..errors import TopologyError
from ..telemetry.tracer import NOOP_TRACER, PID_TREE
from .filters import Filter
from .packets import NetworkTrace, payload_nbytes
from .topology import Topology
from .transport import LocalTransport, Transport

__all__ = ["Network"]


def _timed_apply(args: tuple[Callable[[Any], Any], Any]) -> tuple[Any, float, float]:
    """Run one node's work, returning (result, start, end) on the
    monotonic clock — the interval becomes both a compute-seconds trace
    entry and (when tracing) a retroactive per-node span."""
    fn, payload = args
    t0 = time.perf_counter()
    out = fn(payload)
    return out, t0, time.perf_counter()


class Network:
    """An instantiated process tree ready to run collective phases.

    Parameters
    ----------
    fault_injector:
        Optional callable ``(node_id, phase) -> bool``; returning True
        makes that node's computation fail with :class:`TransportError`
        (a simulated process crash).  Used by the robustness tests.
    retries:
        How many times a crashed node is re-admitted before the phase
        aborts — the stand-in for MRNet restarting a tool process.
        Default 0 (fail fast).  See :meth:`_poll_faults` for exactly what
        a "retry" means here.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; per-node compute spans
        land on pid ``trace_pid`` with the node id as tid.
    """

    def __init__(
        self,
        topology: Topology,
        transport: Transport | None = None,
        *,
        fault_injector=None,
        retries: int = 0,
        tracer=None,
        trace_pid: int = PID_TREE,
    ) -> None:
        if retries < 0:
            raise TopologyError("retries must be >= 0")
        self.topology = topology
        self.tracer = tracer or NOOP_TRACER
        self.trace_pid = trace_pid
        self.transport = transport or LocalTransport(tracer=self.tracer)
        self.fault_injector = fault_injector
        self.retries = int(retries)
        self.fault_log: list[tuple[int, str]] = []
        self._leaves = topology.leaves()

    def _poll_faults(self, nodes: Sequence[int], phase: str) -> None:
        """Poll the fault injector for each node; raise when the retry
        budget is exhausted.

        Retry semantics — read this before writing a robustness test:
        faults are polled *before* the node work runs, and a "retry"
        simply **re-polls the injector** (modelling MRNet restarting the
        process and re-admitting it to the phase).  The node's work is
        never executed for a crashed attempt, and it runs **exactly
        once** after the final successful poll — a recovered retry does
        not imply the work function was invoked multiple times.  An
        injector must therefore maintain its own attempt state (e.g.
        "crash only the first poll"); an injector that always returns
        True exhausts any retry budget.

        Every crashed attempt is appended to :attr:`fault_log` as
        ``(node, phase)``.
        """
        from ..errors import TransportError

        if self.fault_injector is None:
            return
        for node in nodes:
            attempts = 0
            while self.fault_injector(node, phase):
                self.fault_log.append((node, phase))
                self.tracer.instant(
                    "fault", cat="mrnet", pid=self.trace_pid, tid=node, phase=phase
                )
                attempts += 1
                if attempts > self.retries:
                    raise TransportError(
                        f"node {node} failed during {phase} "
                        f"({attempts} attempt(s), {self.retries} retr(ies))"
                    )

    # ------------------------------------------------------------------ #
    # Leaf computation
    # ------------------------------------------------------------------ #

    def map_leaves(
        self, fn: Callable[[Any], Any], inputs: Sequence[Any], *, name: str = "map"
    ) -> tuple[list[Any], NetworkTrace]:
        """Apply ``fn`` to one input per leaf; results in leaf order."""
        if len(inputs) != len(self._leaves):
            raise TopologyError(
                f"{len(inputs)} inputs for {len(self._leaves)} leaves"
            )
        trace = NetworkTrace()
        self._poll_faults(self._leaves, "map")
        triples = self.transport.run_batch(
            _timed_apply, [(fn, inp) for inp in inputs]
        )
        results = []
        for leaf, (out, t0, t1) in zip(self._leaves, triples):
            trace.add_compute(leaf, t1 - t0)
            self.tracer.add_span(
                f"{name}.leaf", t0, t1, cat="mrnet", pid=self.trace_pid, tid=leaf
            )
            results.append(out)
        return results, trace

    # ------------------------------------------------------------------ #
    # Upstream reduction
    # ------------------------------------------------------------------ #

    def reduce(
        self, leaf_payloads: Sequence[Any], filt: Filter, *, name: str = "reduce"
    ) -> tuple[Any, NetworkTrace]:
        """Reduce leaf payloads to a single root value through ``filt``.

        The filter runs at every node with children (internal nodes and
        the root), level by level from the bottom; nodes within a level
        are independent and go through the transport as one batch.
        """
        if len(leaf_payloads) != len(self._leaves):
            raise TopologyError(
                f"{len(leaf_payloads)} payloads for {len(self._leaves)} leaves"
            )
        topo = self.topology
        trace = NetworkTrace()
        value: dict[int, Any] = dict(zip(self._leaves, leaf_payloads))

        for level_nodes in reversed(topo.levels()):
            batch_nodes = [n for n in level_nodes if topo.children[n]]
            if not batch_nodes:
                continue
            self._poll_faults(batch_nodes, "reduce")
            tasks = []
            bytes_in: dict[int, int] = {}
            for node in batch_nodes:
                child_payloads = [value[c] for c in topo.children[node]]
                for child, payload in zip(topo.children[node], child_payloads):
                    trace.record(child, node, "reduce", payload)
                if self.tracer.enabled:
                    bytes_in[node] = sum(payload_nbytes(p) for p in child_payloads)
                tasks.append(child_payloads)
            triples = self.transport.run_batch(
                _timed_apply, [(filt.combine, t) for t in tasks]
            )
            for node, task, (out, t0, t1) in zip(batch_nodes, tasks, triples):
                trace.add_compute(node, t1 - t0)
                self.tracer.add_span(
                    f"{name}.filter",
                    t0,
                    t1,
                    cat="mrnet",
                    pid=self.trace_pid,
                    tid=node,
                    n_children=len(task),
                    bytes_in=bytes_in.get(node, 0),
                )
                value[node] = out
        return value[topo.root], trace

    # ------------------------------------------------------------------ #
    # Downstream multicast
    # ------------------------------------------------------------------ #

    def multicast(
        self,
        root_payload: Any,
        split: Callable[[Any, int], Sequence[Any]] | None = None,
        *,
        name: str = "multicast",
    ) -> tuple[list[Any], NetworkTrace]:
        """Send a payload from the root down to every leaf.

        ``split(payload, n_children)`` produces per-child payloads at each
        node (defaults to replication — a true multicast).  Returns the
        payloads arriving at the leaves, in leaf order.
        """
        topo = self.topology
        trace = NetworkTrace()
        value: dict[int, Any] = {topo.root: root_payload}
        for level_nodes in topo.levels():
            self._poll_faults(
                [n for n in level_nodes if topo.children[n]], "multicast"
            )
            for node in level_nodes:
                kids = topo.children[node]
                if not kids:
                    continue
                payload = value[node]
                if split is None:
                    parts: Sequence[Any] = [payload] * len(kids)
                else:
                    parts = split(payload, len(kids))
                    if len(parts) != len(kids):
                        raise TopologyError(
                            f"split produced {len(parts)} parts for {len(kids)} children"
                        )
                for child, part in zip(kids, parts):
                    trace.record(node, child, "multicast", part)
                    value[child] = part
                self.tracer.instant(
                    f"{name}.send",
                    cat="mrnet",
                    pid=self.trace_pid,
                    tid=node,
                    n_children=len(kids),
                )
        return [value[leaf] for leaf in self._leaves], trace

    def close(self) -> None:
        """Release the transport's resources (worker pools)."""
        self.transport.close()
