"""The MRNet network: leaf maps, upstream reduction, downstream multicast.

A :class:`Network` binds a :class:`Topology` to a transport and offers the
three collective operations Mr. Scan is built from:

``map_leaves``
    Run a function on every leaf (the GPU clustering, the partitioner's
    local histogram/write steps).

``reduce``
    Carry one payload per leaf up the tree, applying a filter at every
    internal node and the root (histogram reduction; progressive cluster
    merge, "the clusters are progressively merged by each level of
    intermediate processes until they reach the root", §3).

``multicast``
    Distribute a root payload down to all leaves, optionally splitting it
    per child (partition boundaries; global cluster IDs in the sweep,
    "with each level of the tree reversing the merge operation", §3.4).

Every operation returns ``(result, NetworkTrace)``; traces capture packet
counts, byte volumes, and per-node filter compute seconds for the perf
model.  Pass a :class:`repro.telemetry.Tracer` to additionally record
per-node compute *spans* (one per leaf task / per internal filter
application, on the network's logical pid track) and fault instants.

Fault tolerance
---------------
Node work runs under the attached :class:`~repro.resilience.ResiliencePolicy`:

* a :class:`~repro.resilience.FaultInjector` (or legacy callable) is
  polled per ``(node, phase, attempt)`` and its fault — crash, straggler
  slowdown, or device OOM — is applied around the node's work;
* a failed attempt is retried with exponential backoff up to the policy's
  retry budget, each attempt bounded by ``leaf_timeout`` (preemptive
  under :class:`ProcessTransport`, cooperative post-work otherwise);
* a node that exhausts its budget is declared **dead** and, when failover
  is enabled, its work is *re-hosted*: a leaf task moves to the
  least-loaded surviving sibling (subject to an optional capacity check),
  an internal node's filter work is adopted by its nearest live ancestor.
  Payload routing never changes — only which process executes — so the
  collective's result is invariant under any recoverable fault schedule;
* every fault and recovery action lands in :attr:`Network.fault_log` (a
  capped :class:`~repro.resilience.FaultLog`) and, when tracing, as
  ``fault``/``failover`` instants on the network's track.

Crashed attempts never deliver work: a ``point="before"`` crash fails
before the work runs, a ``point="after"`` crash runs the work (so leaf
checkpoints are written) but fails before the result is delivered — the
retried attempt is what returns it, typically straight from the
checkpoint.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from ..errors import (
    DeviceMemoryError,
    LeafTimeoutError,
    RetryExhaustedError,
    TopologyError,
    TransportError,
)
from ..resilience.faults import FaultEvent, FaultLog, as_injector
from ..resilience.policy import ResiliencePolicy
from ..telemetry.tracer import NOOP_TRACER, PID_TREE
from .filters import Filter
from .packets import NetworkTrace, payload_nbytes
from .topology import Topology
from .transport import TIMED_OUT, LocalTransport, Transport

__all__ = ["Network"]


def _failure_category(exc: BaseException) -> str:
    if isinstance(exc, DeviceMemoryError):
        return "oom"
    if isinstance(exc, LeafTimeoutError):
        return "timeout"
    if isinstance(exc, TransportError):
        return "crash"
    return "error"


def _guarded_apply(
    args: tuple[Callable[[Any], Any], Any, dict | None, float | None]
) -> tuple:
    """Run one node's work under an injected fault spec and a deadline.

    Returns a picklable marker (worker processes ship it back):

    * ``("ok", result, t0, t1, applied)`` — ``applied`` is the injected
      non-fatal fault kind (``"slowdown"``) or ``None``;
    * ``("err", exc_type_name, message, category, t0, t1)`` — category is
      ``crash`` / ``oom`` / ``timeout`` / ``error``.
    """
    fn, payload, spec, timeout = args
    t0 = time.perf_counter()
    applied = None
    try:
        if spec is not None:
            kind = spec["kind"]
            if kind == "slowdown":
                applied = "slowdown"
                time.sleep(spec["delay_seconds"])
            elif kind == "kill":
                # Hard death: SIGKILL the hosting worker so the transport's
                # self-healing path (respawn + re-dispatch + poison-task
                # quarantine) is what recovers, not this in-band marker.
                # Safe only where the driver survives: multiprocessing pool
                # workers and TCP worker agents (which set MRSCAN_TCP_AGENT).
                # In the driver process (local transport) a real SIGKILL
                # would end the run itself, so the fault downgrades to a
                # no-op there — the work below runs normally.
                import multiprocessing as _mp
                import os as _os

                if (
                    _mp.parent_process() is not None
                    or _os.environ.get("MRSCAN_TCP_AGENT")
                ):
                    import signal as _signal

                    _os.kill(_os.getpid(), _signal.SIGKILL)
            elif kind in ("disconnect", "drop", "netdelay"):
                # Network faults are injected at the TCP framing layer by
                # the transport (repro.mrnet.tcp), which owns the recovery
                # — in-band they are no-ops, so the same seeded plan is
                # safe under every transport.
                pass
            elif kind == "oom":
                raise DeviceMemoryError(
                    f"injected device OOM at node {spec['node']} "
                    f"(attempt {spec['attempt']})"
                )
            elif spec["point"] == "before":
                raise TransportError(
                    f"injected crash at node {spec['node']} before work "
                    f"(attempt {spec['attempt']})"
                )
        out = fn(payload)
        if spec is not None and spec["kind"] == "crash" and spec["point"] == "after":
            # The work ran (side effects such as checkpoints are durable)
            # but the process dies before delivering the result.
            raise TransportError(
                f"injected crash at node {spec['node']} after work "
                f"(attempt {spec['attempt']})"
            )
        t1 = time.perf_counter()
        if timeout is not None and (t1 - t0) > timeout:
            raise LeafTimeoutError(
                f"node work took {t1 - t0:.3f}s, exceeding the {timeout:.3f}s deadline"
            )
        return ("ok", out, t0, t1, applied)
    except BaseException as exc:
        return (
            "err",
            type(exc).__name__,
            str(exc),
            _failure_category(exc),
            t0,
            time.perf_counter(),
        )


class Network:
    """An instantiated process tree ready to run collective phases.

    Parameters
    ----------
    fault_injector:
        Optional fault source: a :class:`~repro.resilience.FaultPlan`, a
        :class:`~repro.resilience.FaultInjector`, or a legacy callable
        ``(node_id, phase) -> bool`` (True = simulated crash).
    retries:
        Legacy knob: how many times a failed node is re-attempted before
        the phase aborts.  Building a :class:`Network` with ``retries``
        alone gets the seed-era fail-fast policy (no backoff sleeps, no
        failover); pass ``resilience`` for the full behaviour.
    resilience:
        A :class:`~repro.resilience.ResiliencePolicy` (retry/backoff
        budget, per-attempt deadline, failover).  Takes precedence over
        ``retries``.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; per-node compute spans
        land on pid ``trace_pid`` with the node id as tid.
    cancel:
        Optional :class:`~repro.resilience.CancelToken`.  The execution
        engine polls it at every retry-round boundary (and forwards it to
        the transport's dispatch loop): a cancelled or deadline-expired
        token unwinds the collective immediately with
        :class:`~repro.errors.OperationCancelledError` instead of
        retrying — cancellation is the caller's decision, not a fault.
    """

    def __init__(
        self,
        topology: Topology,
        transport: Transport | None = None,
        *,
        fault_injector=None,
        retries: int | None = None,
        resilience: ResiliencePolicy | None = None,
        tracer=None,
        trace_pid: int = PID_TREE,
        close_transport: bool | None = None,
        cancel=None,
    ) -> None:
        if retries is not None and retries < 0:
            raise TopologyError("retries must be >= 0")
        self.topology = topology
        self.tracer = tracer or NOOP_TRACER
        self.trace_pid = trace_pid
        self.transport = transport or LocalTransport(tracer=self.tracer)
        #: Whether :meth:`close` reaps the transport.  Default: only a
        #: transport this network created itself — a caller-provided one
        #: (a persistent executor shared across phases and trees) stays
        #: open, its owner closes it.  Pass ``close_transport=True`` to
        #: hand ownership over explicitly.
        self._close_transport = (
            transport is None if close_transport is None else bool(close_transport)
        )
        self.injector = as_injector(fault_injector)
        self.resilience = resilience or ResiliencePolicy.fail_fast(retries or 0)
        self.retries = self.resilience.retry.max_retries
        self.fault_log = FaultLog()
        #: Nodes declared permanently dead (retry budget exhausted).
        self.dead_nodes: set[int] = set()
        #: Logical node -> node now hosting its work (failover re-homing).
        self._hosts: dict[int, int] = {}
        #: Extra work cost adopted per node by leaf failover.
        self._adopted: dict[int, float] = {}
        self._sleep = time.sleep  # overridable in tests
        self._leaves = topology.leaves()
        self._cancel = cancel

    # ------------------------------------------------------------------ #
    # Fault bookkeeping
    # ------------------------------------------------------------------ #

    def host_of(self, node: int) -> int:
        """The node currently executing ``node``'s work (itself if live)."""
        while node in self._hosts:
            node = self._hosts[node]
        return node

    def _record_fault(
        self, node: int, phase: str, name: str, attempt: int, kind: str, action: str,
        detail: str = "",
    ) -> None:
        self.fault_log.append(
            FaultEvent(
                node=node, phase=phase, name=name, attempt=attempt,
                kind=kind, action=action, detail=detail,
            )
        )
        self.tracer.instant(
            "fault" if action != "failover" else "failover",
            cat="mrnet",
            pid=self.trace_pid,
            tid=node,
            phase=name,
            kind=kind,
            action=action,
            attempt=attempt,
        )

    def _mark_dead(self, node: int, host: int) -> None:
        self.dead_nodes.add(node)
        self._hosts[node] = host

    def _live_ancestor(self, node: int) -> int | None:
        """Nearest live proper ancestor of ``node`` (None if all dead)."""
        parent = self.topology.parent[node]
        while parent != -1:
            if parent not in self.dead_nodes:
                return parent
            parent = self.topology.parent[parent]
        return None

    def _pick_leaf_failover(
        self,
        dead: int,
        base_load: dict[int, float],
        task_cost: float | None,
        capacity: float | None,
    ) -> int | None:
        """Least-loaded surviving sibling leaf with capacity to spare."""
        best: int | None = None
        best_load = float("inf")
        for leaf in self._leaves:
            if leaf == dead or leaf in self.dead_nodes:
                continue
            load = base_load.get(leaf, 0.0) + self._adopted.get(leaf, 0.0)
            if (
                capacity is not None
                and task_cost is not None
                and load + task_cost > capacity
            ):
                continue
            if load < best_load:
                best, best_load = leaf, load
        return best

    # ------------------------------------------------------------------ #
    # The resilient execution engine
    # ------------------------------------------------------------------ #

    def _run_tasks(
        self,
        nodes: Sequence[int],
        fn: Callable[[Any], Any],
        payloads: list[Any],
        *,
        phase: str,
        name: str,
        recover: Callable[[Any, str], Any] | None = None,
        cost: Callable[[Any], float] | None = None,
        capacity: float | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[tuple[Any, float, float]], list[int]]:
        """Execute ``payloads[i]`` for logical node ``nodes[i]`` under the
        resilience policy.  Returns ``(timing triples, executing hosts)``
        in input order.

        ``recover(payload, message) -> new payload | None`` is consulted
        on device-OOM failures — the pipeline uses it to split the leaf's
        partition before re-execution.  ``cost``/``capacity`` guard leaf
        failover placement (a sibling must fit the adopted partition in
        device memory).  ``on_result(i, out)`` fires the moment task ``i``
        delivers its result — *during* the round, not after the phase —
        so a durability journal can record completions a crash later in
        the same round would otherwise lose.
        """
        policy = self.resilience
        n = len(payloads)
        pending = list(range(n))
        host = {i: self.host_of(nodes[i]) for i in pending}
        attempt = dict.fromkeys(pending, 0)
        failovers = dict.fromkeys(pending, 0)
        results: dict[int, tuple[Any, float, float]] = {}
        base_load: dict[int, float] = {}
        if cost is not None and phase == "map":
            for i in pending:
                base_load[host[i]] = float(cost(payloads[i]))
        max_failovers = (
            policy.max_failovers
            if policy.max_failovers is not None
            else max(len(nodes) - 1, self.topology.depth())
        )
        round_index = 0
        # Only forward the token when one exists: test doubles (and older
        # third-party transports) implement ``run_batch(fn, tasks, *,
        # timeout=None)`` without the ``cancel`` kwarg.
        run_kwargs: dict[str, Any] = {}
        if self._cancel is not None:
            run_kwargs["cancel"] = self._cancel
        while pending:
            if self._cancel is not None:
                self._cancel.check()
            batch = []
            for i in pending:
                spec = None
                if self.injector is not None:
                    spec = self.injector.check(host[i], phase, name, attempt[i])
                batch.append(
                    (fn, payloads[i], spec.as_dict() if spec else None, policy.leaf_timeout)
                )
            markers = self.transport.run_batch(
                _guarded_apply, batch, timeout=policy.leaf_timeout, **run_kwargs
            )
            still_pending: list[int] = []
            exhausted: list[tuple[int, str, str, str]] = []
            for i, marker in zip(pending, markers):
                if marker is TIMED_OUT:
                    now = time.perf_counter()
                    marker = (
                        "err",
                        "LeafTimeoutError",
                        f"worker missed the {policy.leaf_timeout}s deadline "
                        "(preempted by the transport)",
                        "timeout",
                        now,
                        now,
                    )
                if marker[0] == "ok":
                    _, out, t0, t1, applied = marker
                    if applied is not None:  # non-fatal injected fault
                        self._record_fault(
                            host[i], phase, name, attempt[i], applied, "delayed"
                        )
                    results[i] = (out, t0, t1)
                    if on_result is not None:
                        on_result(i, out)
                    continue
                _, etype, message, category, _t0, _t1 = marker
                kind = {"oom": "oom", "timeout": "timeout"}.get(category, "crash")
                if category == "oom" and recover is not None:
                    replacement = recover(payloads[i], message)
                    if replacement is not None:
                        payloads[i] = replacement
                        self._record_fault(
                            host[i], phase, name, attempt[i], kind, "recovered",
                            detail=f"{etype}: {message}",
                        )
                        attempt[i] += 1
                        still_pending.append(i)
                        continue
                self._record_fault(
                    host[i], phase, name, attempt[i], kind, "retry",
                    detail=f"{etype}: {message}",
                )
                attempt[i] += 1
                if attempt[i] > policy.retry.max_retries:
                    exhausted.append((i, kind, etype, message))
                    continue
                still_pending.append(i)
            # Declare every host that exhausted its budget this round dead
            # *before* choosing failover targets, so a dying sibling is
            # never picked to adopt another dying sibling's task.
            for i, _kind, _etype, _message in exhausted:
                self.dead_nodes.add(host[i])
            for i, kind, etype, message in exhausted:
                target: int | None = None
                if policy.failover and failovers[i] < max_failovers:
                    if phase == "map":
                        task_cost = float(cost(payloads[i])) if cost is not None else None
                        target = self._pick_leaf_failover(
                            host[i], base_load, task_cost, capacity
                        )
                        if target is not None and task_cost is not None:
                            self._adopted[target] = (
                                self._adopted.get(target, 0.0) + task_cost
                            )
                    else:
                        target = self._live_ancestor(host[i])
                if target is not None:
                    self._mark_dead(host[i], target)
                    self._record_fault(
                        host[i], phase, name, attempt[i] - 1, kind, "failover",
                        detail=f"re-hosted on node {target}",
                    )
                    host[i] = target
                    attempt[i] = 0
                    failovers[i] += 1
                    still_pending.append(i)
                    continue
                self._record_fault(
                    host[i], phase, name, attempt[i] - 1, kind, "abort",
                    detail=f"{etype}: {message}",
                )
                # Deadline misses surface as LeafTimeoutError (still a
                # TransportError) so callers can tell a straggler from
                # a crash loop.
                exc_cls = (
                    LeafTimeoutError if kind == "timeout" else RetryExhaustedError
                )
                raise exc_cls(
                    f"node {host[i]} failed during {phase} "
                    f"({attempt[i]} attempt(s), {policy.retry.max_retries} "
                    f"retr(ies)): {etype}: {message}"
                )
            pending = still_pending
            if pending:
                delay = policy.retry.backoff_seconds(round_index)
                round_index += 1
                if delay > 0:
                    self._sleep(delay)
        return [results[i] for i in range(n)], [host[i] for i in range(n)]

    def _survive(self, node: int, *, phase: str, name: str) -> None:
        """Retry/backoff/failover loop for nodes whose phase work executes
        inline (multicast routing) — only the fault poll matters."""
        if self.injector is None:
            return
        policy = self.resilience
        host = self.host_of(node)
        attempt = 0
        failovers = 0
        round_index = 0
        max_failovers = (
            policy.max_failovers
            if policy.max_failovers is not None
            else self.topology.depth()
        )
        while True:
            if self._cancel is not None:
                self._cancel.check()
            spec = self.injector.check(host, phase, name, attempt)
            if spec is None:
                return
            if spec.kind == "slowdown":
                self._record_fault(
                    host, phase, name, attempt, "slowdown", "delayed",
                    detail=f"{spec.delay_seconds:.3f}s",
                )
                self._sleep(spec.delay_seconds)
                return
            self._record_fault(host, phase, name, attempt, spec.kind, "retry")
            attempt += 1
            if attempt > policy.retry.max_retries:
                target = (
                    self._live_ancestor(host)
                    if policy.failover and failovers < max_failovers
                    else None
                )
                if target is not None:
                    self._mark_dead(host, target)
                    self._record_fault(
                        host, phase, name, attempt - 1, spec.kind, "failover",
                        detail=f"re-hosted on node {target}",
                    )
                    host = target
                    attempt = 0
                    failovers += 1
                    continue
                self._record_fault(host, phase, name, attempt - 1, spec.kind, "abort")
                raise RetryExhaustedError(
                    f"node {host} failed during {phase} "
                    f"({attempt} attempt(s), {policy.retry.max_retries} retr(ies))"
                )
            delay = policy.retry.backoff_seconds(round_index)
            round_index += 1
            if delay > 0:
                self._sleep(delay)

    # ------------------------------------------------------------------ #
    # Leaf computation
    # ------------------------------------------------------------------ #

    def map_leaves(
        self,
        fn: Callable[[Any], Any],
        inputs: Sequence[Any],
        *,
        name: str = "map",
        recover: Callable[[Any, str], Any] | None = None,
        cost: Callable[[Any], float] | None = None,
        capacity: float | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> tuple[list[Any], NetworkTrace]:
        """Apply ``fn`` to one input per leaf; results in leaf order.

        ``recover``/``cost``/``capacity``/``on_result`` feed the
        resilience engine: OOM recovery rewrites, capacity-aware failover
        placement, and per-leaf completion callbacks (see
        :meth:`_run_tasks`).
        """
        if len(inputs) != len(self._leaves):
            raise TopologyError(
                f"{len(inputs)} inputs for {len(self._leaves)} leaves"
            )
        trace = NetworkTrace()
        triples, hosts = self._run_tasks(
            self._leaves,
            fn,
            list(inputs),
            phase="map",
            name=name,
            recover=recover,
            cost=cost,
            capacity=capacity,
            on_result=on_result,
        )
        results = []
        for leaf, host, payload, (out, t0, t1) in zip(
            self._leaves, hosts, inputs, triples
        ):
            trace.add_compute(host, t1 - t0)
            self.tracer.add_span(
                f"{name}.leaf", t0, t1, cat="mrnet", pid=self.trace_pid, tid=host,
                # Wire cost of the leaf's input — refs staged through the
                # shm data plane report their ~100-byte handle size here,
                # not the arrays they point at.
                **({"bytes_in": payload_nbytes(payload)} if self.tracer.enabled else {}),
                **({"adopted_from": leaf} if host != leaf else {}),
            )
            results.append(out)
        return results, trace

    # ------------------------------------------------------------------ #
    # Upstream reduction
    # ------------------------------------------------------------------ #

    def reduce(
        self, leaf_payloads: Sequence[Any], filt: Filter, *, name: str = "reduce"
    ) -> tuple[Any, NetworkTrace]:
        """Reduce leaf payloads to a single root value through ``filt``.

        The filter runs at every node with children (internal nodes and
        the root), level by level from the bottom; nodes within a level
        are independent and go through the transport as one batch.  A
        failing internal node is retried per the resilience policy and
        finally re-hosted on its nearest live ancestor — the child
        payloads it combines never change, so the root value is invariant.
        """
        if len(leaf_payloads) != len(self._leaves):
            raise TopologyError(
                f"{len(leaf_payloads)} payloads for {len(self._leaves)} leaves"
            )
        topo = self.topology
        trace = NetworkTrace()
        value: dict[int, Any] = dict(zip(self._leaves, leaf_payloads))

        for level_nodes in reversed(topo.levels()):
            batch_nodes = [n for n in level_nodes if topo.children[n]]
            if not batch_nodes:
                continue
            tasks = []
            bytes_in: dict[int, int] = {}
            for node in batch_nodes:
                child_payloads = [value[c] for c in topo.children[node]]
                for child, payload in zip(topo.children[node], child_payloads):
                    trace.record(child, node, "reduce", payload)
                if self.tracer.enabled:
                    bytes_in[node] = sum(payload_nbytes(p) for p in child_payloads)
                tasks.append(child_payloads)
            triples, hosts = self._run_tasks(
                batch_nodes, filt.combine, tasks, phase="reduce", name=name
            )
            for node, host, task, (out, t0, t1) in zip(
                batch_nodes, hosts, tasks, triples
            ):
                trace.add_compute(host, t1 - t0)
                self.tracer.add_span(
                    f"{name}.filter",
                    t0,
                    t1,
                    cat="mrnet",
                    pid=self.trace_pid,
                    tid=host,
                    n_children=len(task),
                    bytes_in=bytes_in.get(node, 0),
                )
                value[node] = out
        return value[topo.root], trace

    # ------------------------------------------------------------------ #
    # Downstream multicast
    # ------------------------------------------------------------------ #

    def multicast(
        self,
        root_payload: Any,
        split: Callable[[Any, int], Sequence[Any]] | None = None,
        *,
        name: str = "multicast",
    ) -> tuple[list[Any], NetworkTrace]:
        """Send a payload from the root down to every leaf.

        ``split(payload, n_children)`` produces per-child payloads at each
        node (defaults to replication — a true multicast).  Returns the
        payloads arriving at the leaves, in leaf order.
        """
        topo = self.topology
        trace = NetworkTrace()
        value: dict[int, Any] = {topo.root: root_payload}
        for level_nodes in topo.levels():
            for node in level_nodes:
                kids = topo.children[node]
                if not kids:
                    continue
                self._survive(node, phase="multicast", name=name)
                payload = value[node]
                if split is None:
                    parts: Sequence[Any] = [payload] * len(kids)
                else:
                    parts = split(payload, len(kids))
                    if len(parts) != len(kids):
                        raise TopologyError(
                            f"split produced {len(parts)} parts for {len(kids)} children"
                        )
                for child, part in zip(kids, parts):
                    trace.record(node, child, "multicast", part)
                    value[child] = part
                self.tracer.instant(
                    f"{name}.send",
                    cat="mrnet",
                    pid=self.trace_pid,
                    tid=self.host_of(node),
                    n_children=len(kids),
                )
        return [value[leaf] for leaf in self._leaves], trace

    def close(self) -> None:
        """Release the transport's resources (worker pools) — unless the
        transport is caller-owned (see ``close_transport``)."""
        if self._close_transport:
            self.transport.close()
