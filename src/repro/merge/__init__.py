"""Phase 3: distributed cluster merging (§3.3).

Clusters found on different leaves merge when they share a core point (or
when a shadow-side misclassification hides one).  To merge without
shipping whole clusters up the tree, each cluster is summarised per grid
cell by at most **eight representative points** — the core points closest
to the cell's four corners and four side midpoints — which §3.3.1 (Fig 5)
proves sufficient: any overlapping core point lies within Eps of at least
one representative.  Summaries flow up the MRNet tree; every internal node
runs the merge filter over its children's summaries; the root assigns
global cluster IDs.
"""

from .representatives import select_representatives, representative_targets
from .summary import CellSummary, ClusterSummary, LeafSummary, summarize_leaf
from .merger import merge_summaries, MergeFilter, MergeOutcome
from .global_ids import GlobalIdAssignment, assign_global_ids

__all__ = [
    "select_representatives",
    "representative_targets",
    "CellSummary",
    "ClusterSummary",
    "LeafSummary",
    "summarize_leaf",
    "merge_summaries",
    "MergeFilter",
    "MergeOutcome",
    "GlobalIdAssignment",
    "assign_global_ids",
]
