"""Per-leaf cluster summaries — what flows up the merge tree (§3.3).

"At this point in the algorithm, all clusters are composed of grid cells
with each grid cell containing a set of representative points and the set
of non-core points."  A :class:`LeafSummary` is exactly that, for every
cluster a leaf found, plus the per-owned-cell set of non-core point IDs the
merge rules' set difference needs (§3.3.2, second overlap type: the owner's
classification of its own cells is authoritative).

Summaries are the only thing transmitted upstream — never whole clusters —
which is what bounds merge traffic ("a small, bounded number of
representative points per cluster", §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MergeError
from ..points import NOISE, PointSet
from .representatives import select_representatives

__all__ = ["CellSummary", "ClusterSummary", "LeafSummary", "summarize_leaf", "cell_bounds"]

Cell = tuple[int, int]
ClusterKey = tuple[int, int]  # (leaf_id, local_cluster_id)


def cell_bounds(cell: Cell, eps: float) -> tuple[float, float, float, float]:
    """Coordinate-space bounds of a global Eps-grid cell."""
    cx, cy = cell
    return (cx * eps, cy * eps, (cx + 1) * eps, (cy + 1) * eps)


@dataclass
class CellSummary:
    """One cluster's footprint inside one grid cell."""

    rep_ids: np.ndarray  # ids of the <=8 representative core points
    rep_coords: np.ndarray  # (k, 2) coordinates of the representatives
    noncore_ids: np.ndarray  # ids of the cluster's non-core members here
    noncore_coords: np.ndarray  # (m, 2) their coordinates

    @property
    def n_reps(self) -> int:
        return len(self.rep_ids)

    def payload_bytes(self) -> int:
        return int(
            self.rep_ids.nbytes
            + self.rep_coords.nbytes
            + self.noncore_ids.nbytes
            + self.noncore_coords.nbytes
        )


@dataclass
class ClusterSummary:
    """A (possibly already-merged) cluster as seen by the merge tree."""

    key: ClusterKey  # canonical key: the smallest constituent key
    cells: dict[Cell, CellSummary] = field(default_factory=dict)
    constituents: frozenset[ClusterKey] = frozenset()

    def __post_init__(self) -> None:
        if not self.constituents:
            self.constituents = frozenset([self.key])

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def payload_bytes(self) -> int:
        return sum(cs.payload_bytes() for cs in self.cells.values()) + 32 * len(self.cells)


@dataclass
class LeafSummary:
    """Everything one subtree contributes to the merge.

    ``owner_noncore_ids`` maps each *owned* cell to the IDs of the points
    the owning leaf classified non-core (border or noise) — the
    authoritative classification the type-2 merge rule differences
    against.  Owned cells are disjoint across leaves, so merged summaries
    simply union these maps.
    """

    eps: float
    clusters: dict[ClusterKey, ClusterSummary] = field(default_factory=dict)
    owner_noncore_ids: dict[Cell, np.ndarray] = field(default_factory=dict)
    source_leaves: frozenset[int] = frozenset()

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def payload_bytes(self) -> int:
        total = sum(c.payload_bytes() for c in self.clusters.values())
        total += sum(a.nbytes for a in self.owner_noncore_ids.values())
        return total + 64


def _noncore_claims(
    points: PointSet, labels: np.ndarray, core_mask: np.ndarray, eps: float
) -> dict[int, list[int]]:
    """Map cluster label -> indices of non-core points claimed by it.

    A cluster *claims* every non-core point within Eps of one of its core
    points — the multi-membership the paper's expansion pass creates
    ("all of that point's neighbors are marked as being members of the
    cluster", §3.2.2), even though the output label picks one cluster.
    The merge rules need the full claim sets: a border point shared by a
    local cluster and a remote one is evidence the type-2 rule differences
    against, and it must not vanish because the point's output label chose
    a different adjacent cluster.
    """
    from ..dbscan.grid_index import GridIndex

    claims: dict[int, set[int]] = {}
    if not len(points):
        return {}
    index = GridIndex(points, eps)
    eps2 = eps * eps
    coords = points.coords
    for cell in index.cell_counts():
        members = index.cell_members(cell)
        members = members[~core_mask[members]]
        if len(members) == 0:
            continue
        cand = index.candidate_indices(cell)
        cand = cand[core_mask[cand]]
        if len(cand) == 0:
            continue
        d2 = (
            (coords[members, 0][:, None] - coords[cand, 0][None, :]) ** 2
            + (coords[members, 1][:, None] - coords[cand, 1][None, :]) ** 2
        )
        within = d2 <= eps2
        rows, cols = np.nonzero(within)
        for r, c in zip(rows, cols):
            lab = int(labels[cand[c]])
            claims.setdefault(lab, set()).add(int(members[r]))
    return {lab: sorted(idx) for lab, idx in claims.items()}


def summarize_leaf(
    leaf_id: int,
    points: PointSet,
    labels: np.ndarray,
    core_mask: np.ndarray,
    eps: float,
    owned_cells: set[Cell],
) -> LeafSummary:
    """Build the upstream summary from one leaf's clustering output.

    ``points`` is the leaf's full view (partition + shadow points);
    ``labels``/``core_mask`` are the GPU DBSCAN output over that view;
    ``owned_cells`` are the cells of the leaf's partition (not shadow).
    """
    labels = np.asarray(labels)
    core_mask = np.asarray(core_mask, dtype=bool)
    if len(points) != len(labels) or len(points) != len(core_mask):
        raise MergeError(
            f"points ({len(points)}), labels ({len(labels)}) and core_mask "
            f"({len(core_mask)}) disagree"
        )

    cells = (
        np.floor(points.coords / eps).astype(np.int64)
        if len(points)
        else np.empty((0, 2), np.int64)
    )

    summary = LeafSummary(eps=eps, source_leaves=frozenset([leaf_id]))

    # Per-owned-cell non-core ids (authoritative classification).  Every
    # owned cell gets an entry — an *empty* one means "the owner says all
    # points here are core", which makes the type-2 difference the full
    # remote non-core list.  Omitting the entry would instead read as
    # "owner not in this subtree", silently skipping the check (a missed
    # cross-boundary merge the property tests caught).
    if len(points):
        owner_lists: dict[Cell, list[int]] = {cell: [] for cell in owned_cells}
        for i in np.flatnonzero(~core_mask):
            cell = (int(cells[i, 0]), int(cells[i, 1]))
            if cell in owned_cells:
                owner_lists[cell].append(int(points.ids[i]))
        summary.owner_noncore_ids = {
            cell: np.asarray(sorted(ids), dtype=np.int64)
            for cell, ids in owner_lists.items()
        }

    claims = _noncore_claims(points, labels, core_mask, eps)

    # Per-cluster, per-cell summaries.
    for lab in np.unique(labels[labels != NOISE]):
        lab = int(lab)
        core_members = np.flatnonzero((labels == lab) & core_mask)
        noncore_members = np.asarray(claims.get(lab, []), dtype=np.int64)
        member_idx = np.concatenate([core_members, noncore_members])
        key: ClusterKey = (leaf_id, lab)
        cluster = ClusterSummary(key=key)
        member_cells = cells[member_idx]
        order = np.lexsort((member_cells[:, 1], member_cells[:, 0]))
        sorted_idx = member_idx[order]
        sc = member_cells[order]
        change = np.empty(len(sc), dtype=bool)
        change[0] = True
        change[1:] = np.any(sc[1:] != sc[:-1], axis=1)
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], len(sc))
        for (cx, cy), s, e in zip(sc[starts], starts, ends):
            cell = (int(cx), int(cy))
            idx = sorted_idx[s:e]
            core_idx = idx[core_mask[idx]]
            nc_idx2 = idx[~core_mask[idx]]
            if len(core_idx):
                rel = select_representatives(
                    points.coords[core_idx], cell_bounds(cell, eps)
                )
                rep_idx = core_idx[rel]
            else:
                rep_idx = np.empty(0, dtype=np.int64)
            cluster.cells[cell] = CellSummary(
                rep_ids=points.ids[rep_idx].copy(),
                rep_coords=points.coords[rep_idx].copy(),
                noncore_ids=points.ids[nc_idx2].copy(),
                noncore_coords=points.coords[nc_idx2].copy(),
            )
        summary.clusters[key] = cluster
    return summary
