"""The merge filter: combine child summaries at a tree node (§3.3.2).

For every grid cell where clusters from different children overlap, three
overlap types are evaluated:

1. **core/core** — a representative of one cluster within Eps of a
   representative of the other.  Representatives are core points, so this
   is a genuine DBSCAN core edge; Fig 5's lemma guarantees it fires
   whenever the clusters share a core point in the cell.
2. **non-core/core** — a point one side classified non-core (its shadow
   view was incomplete) that the *owner* of the cell classified core:
   the side's non-core members minus the owner's non-core set yields
   points that are globally core; any of them within Eps of the other
   side's representatives merges the clusters (Fig 7).
3. **non-core/non-core** — shared border points do not merge clusters;
   duplicates are removed when summaries combine (the output keeps one
   copy per point).

The filter is associative: internal nodes apply it level by level, and the
root's application yields the final cluster groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import MergeError
from .representatives import select_representatives
from .summary import CellSummary, ClusterSummary, LeafSummary, cell_bounds

__all__ = ["MergeOutcome", "merge_summaries", "MergeFilter"]

Cell = tuple[int, int]
ClusterKey = tuple[int, int]


@dataclass
class MergeOutcome:
    """Statistics from one merge-filter application."""

    n_input_clusters: int = 0
    n_output_clusters: int = 0
    n_cell_pairs_checked: int = 0
    n_core_merges: int = 0
    n_noncore_core_merges: int = 0
    n_duplicate_noncore_removed: int = 0


class _KeyUnionFind:
    """Union-find keyed by cluster keys (small, dict-based)."""

    def __init__(self, keys: Sequence[ClusterKey]) -> None:
        self.parent: dict[ClusterKey, ClusterKey] = {k: k for k in keys}

    def find(self, k: ClusterKey) -> ClusterKey:
        root = k
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[k] != root:
            self.parent[k], k = root, self.parent[k]
        return root

    def union(self, a: ClusterKey, b: ClusterKey) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if rb < ra:  # canonical: smallest key wins
            ra, rb = rb, ra
        self.parent[rb] = ra


def _min_dist_within(a: np.ndarray, b: np.ndarray, eps2: float) -> bool:
    if len(a) == 0 or len(b) == 0:
        return False
    d2 = (
        (a[:, 0][:, None] - b[:, 0][None, :]) ** 2
        + (a[:, 1][:, None] - b[:, 1][None, :]) ** 2
    )
    return bool(np.any(d2 <= eps2))


def _diff_within(
    cs: CellSummary,
    owner_noncore: np.ndarray | None,
    other_reps: np.ndarray,
    eps2: float,
) -> bool:
    """Type-2 check in one direction (cs's non-cores against other's reps)."""
    if owner_noncore is None or len(cs.noncore_ids) == 0 or len(other_reps) == 0:
        return False
    keep = ~np.isin(cs.noncore_ids, owner_noncore)
    if not np.any(keep):
        return False
    return _min_dist_within(cs.noncore_coords[keep], other_reps, eps2)


def merge_summaries(
    summaries: Sequence[LeafSummary], eps: float
) -> tuple[LeafSummary, MergeOutcome]:
    """Apply the merge rules across child summaries and combine them."""
    outcome = MergeOutcome()
    summaries = [s for s in summaries if s is not None]
    if not summaries:
        return LeafSummary(eps=eps), outcome
    for s in summaries:
        if abs(s.eps - eps) > 1e-12:
            raise MergeError(f"summary eps {s.eps} != merge eps {eps}")

    # Combined owner classification (owned cells are disjoint by design).
    owner_noncore: dict[Cell, np.ndarray] = {}
    owner_sources = 0
    for s in summaries:
        for cell, ids in s.owner_noncore_ids.items():
            if cell in owner_noncore:
                raise MergeError(f"cell {cell} owned by two children")
            owner_noncore[cell] = ids
            owner_sources += 1

    all_keys: list[ClusterKey] = []
    for s in summaries:
        all_keys.extend(s.clusters.keys())
    if len(all_keys) != len(set(all_keys)):
        raise MergeError("duplicate cluster keys across children")
    outcome.n_input_clusters = len(all_keys)
    uf = _KeyUnionFind(all_keys)

    # Cell index: cell -> [(child_index, cluster_key)].
    cell_index: dict[Cell, list[tuple[int, ClusterKey]]] = {}
    for child, s in enumerate(summaries):
        for key, cluster in s.clusters.items():
            for cell in cluster.cells:
                cell_index.setdefault(cell, []).append((child, key))

    eps2 = eps * eps
    for cell, entries in cell_index.items():
        if len(entries) < 2:
            continue
        owner_ids = owner_noncore.get(cell)
        for i in range(len(entries)):
            child_i, key_i = entries[i]
            cs_i = summaries[child_i].clusters[key_i].cells[cell]
            for j in range(i + 1, len(entries)):
                child_j, key_j = entries[j]
                if child_i == child_j:
                    continue  # same child: already merged at a lower level
                if uf.find(key_i) == uf.find(key_j):
                    continue
                cs_j = summaries[child_j].clusters[key_j].cells[cell]
                outcome.n_cell_pairs_checked += 1
                # Type 1: core point overlap via representatives.
                if _min_dist_within(cs_i.rep_coords, cs_j.rep_coords, eps2):
                    uf.union(key_i, key_j)
                    outcome.n_core_merges += 1
                    continue
                # Type 2: non-core/core overlap, both directions.
                if _diff_within(cs_i, owner_ids, cs_j.rep_coords, eps2) or _diff_within(
                    cs_j, owner_ids, cs_i.rep_coords, eps2
                ):
                    uf.union(key_i, key_j)
                    outcome.n_noncore_core_merges += 1

    # ------------------------------------------------------------------ #
    # Build the combined summary.
    # ------------------------------------------------------------------ #
    groups: dict[ClusterKey, list[ClusterSummary]] = {}
    for child, s in enumerate(summaries):
        for key, cluster in s.clusters.items():
            groups.setdefault(uf.find(key), []).append(cluster)

    merged = LeafSummary(eps=eps)
    merged.owner_noncore_ids = owner_noncore
    merged.source_leaves = frozenset().union(*(s.source_leaves for s in summaries))

    for root_key, members in groups.items():
        if len(members) == 1 and members[0].key == root_key:
            merged.clusters[root_key] = members[0]
            continue
        combined = ClusterSummary(
            key=root_key,
            constituents=frozenset().union(*(m.constituents for m in members)),
        )
        cells: dict[Cell, list[CellSummary]] = {}
        for m in members:
            for cell, cs in m.cells.items():
                cells.setdefault(cell, []).append(cs)
        for cell, parts in cells.items():
            if len(parts) == 1:
                combined.cells[cell] = parts[0]
                continue
            rep_ids = np.concatenate([p.rep_ids for p in parts])
            rep_coords = np.concatenate([p.rep_coords for p in parts])
            if len(rep_ids):
                # Re-select: the merged cluster's best representative for
                # each anchor is among the children's representatives.
                _, first = np.unique(rep_ids, return_index=True)
                rep_ids, rep_coords = rep_ids[first], rep_coords[first]
                rel = select_representatives(rep_coords, cell_bounds(cell, eps))
                rep_ids, rep_coords = rep_ids[rel], rep_coords[rel]
            nc_ids = np.concatenate([p.noncore_ids for p in parts])
            nc_coords = np.concatenate([p.noncore_coords for p in parts])
            if len(nc_ids):
                uniq, first = np.unique(nc_ids, return_index=True)
                outcome.n_duplicate_noncore_removed += len(nc_ids) - len(uniq)
                nc_ids, nc_coords = nc_ids[first], nc_coords[first]
            combined.cells[cell] = CellSummary(
                rep_ids=rep_ids,
                rep_coords=rep_coords,
                noncore_ids=nc_ids,
                noncore_coords=nc_coords,
            )
        merged.clusters[root_key] = combined

    outcome.n_output_clusters = len(merged.clusters)
    return merged, outcome


class MergeFilter:
    """MRNet filter wrapper around :func:`merge_summaries`.

    Collects per-application outcomes on the instance (safe only with the
    local transport; the process transport gets fresh copies, so outcome
    collection is a local-transport observability feature, not state the
    algorithm depends on).

    An optional tracer receives one ``merge.outcome`` instant per filter
    application carrying the outcome counters — the per-node *span* for
    the same application is recorded by ``Network.reduce``, which knows
    the node id this filter cannot see.  Like outcome collection, the
    tracer is a local-transport feature: pickling the filter (process
    transport) drops it to the no-op, since events recorded in a worker's
    copy could never reach the parent's tracer anyway.
    """

    def __init__(self, eps: float, *, tracer=None) -> None:
        from ..telemetry.tracer import NOOP_TRACER, PID_TREE

        self.eps = float(eps)
        self.outcomes: list[MergeOutcome] = []
        self.tracer = tracer or NOOP_TRACER
        self._trace_pid = PID_TREE

    def __getstate__(self) -> dict:
        from ..telemetry.tracer import NOOP_TRACER

        state = self.__dict__.copy()
        state["tracer"] = NOOP_TRACER
        return state

    def combine(self, payloads: Sequence[LeafSummary]) -> LeafSummary:
        merged, outcome = merge_summaries(payloads, self.eps)
        self.outcomes.append(outcome)
        self.tracer.instant(
            "merge.outcome",
            cat="merge",
            pid=self._trace_pid,
            n_input_clusters=outcome.n_input_clusters,
            n_output_clusters=outcome.n_output_clusters,
            n_cell_pairs_checked=outcome.n_cell_pairs_checked,
            n_core_merges=outcome.n_core_merges,
            n_noncore_core_merges=outcome.n_noncore_core_merges,
        )
        return merged
