"""Representative-point selection (§3.3.1, Fig 5).

"The eight selected representative points are the points closest to the
center of the sides of the grid cell and the corners of the grid cell."

The sufficiency argument (Fig 5): any point P in the cell is within
``eps/2`` of at least one corner or side-midpoint (call it Ref — a cell of
edge eps cannot hide a point farther than eps/2 from all eight targets);
the representative chosen for Ref is by construction at most as far from
Ref as P is, i.e. within ``eps/2`` of Ref too; so P and that representative
are within eps of each other.  Hence if two clusters share a core point in
a cell, each cluster's representative set contains a point within Eps of
it — a merge is always detectable from representatives alone.

``tests/merge/test_representatives.py`` checks this lemma property-based.
"""

from __future__ import annotations

import numpy as np

from ..errors import MergeError

__all__ = ["representative_targets", "select_representatives", "N_REPRESENTATIVES"]

#: The paper's bound: eight points represent a grid cell of any density.
N_REPRESENTATIVES: int = 8


def representative_targets(
    bounds: tuple[float, float, float, float]
) -> np.ndarray:
    """The 8 anchor locations of a cell: 4 corners + 4 side midpoints.

    Order: corners (SW, SE, NW, NE) then midpoints (S, N, W, E).
    """
    xmin, ymin, xmax, ymax = bounds
    xm = 0.5 * (xmin + xmax)
    ym = 0.5 * (ymin + ymax)
    return np.array(
        [
            [xmin, ymin],
            [xmax, ymin],
            [xmin, ymax],
            [xmax, ymax],
            [xm, ymin],
            [xm, ymax],
            [xmin, ym],
            [xmax, ym],
        ],
        dtype=np.float64,
    )


def select_representatives(
    coords: np.ndarray,
    bounds: tuple[float, float, float, float],
) -> np.ndarray:
    """Indices (into ``coords``) of the ≤8 representative points.

    For each of the eight targets, the closest candidate point is chosen;
    duplicates collapse, so sparse cells may yield fewer than eight.  The
    returned indices are sorted and unique.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise MergeError(f"coords must be (n, 2), got {coords.shape}")
    if len(coords) == 0:
        return np.empty(0, dtype=np.int64)
    targets = representative_targets(bounds)
    d2 = (
        (coords[:, 0][:, None] - targets[:, 0][None, :]) ** 2
        + (coords[:, 1][:, None] - targets[:, 1][None, :]) ** 2
    )
    chosen = np.argmin(d2, axis=0)
    return np.unique(chosen.astype(np.int64))
