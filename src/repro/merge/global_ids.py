"""Root-level global cluster ID assignment (§3.4, first half).

After the final merge at the MRNet root, every surviving cluster group is
given "a globally unique identifier".  The assignment maps each
*constituent* key — the ``(leaf_id, local_cluster_id)`` pairs the leaves
originally reported — to its global ID, which is what flows back down the
tree in the sweep so each leaf can relabel its local output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .summary import LeafSummary

__all__ = ["GlobalIdAssignment", "assign_global_ids"]

ClusterKey = tuple[int, int]


@dataclass
class GlobalIdAssignment:
    """The sweep payload: constituent cluster key -> global cluster ID."""

    mapping: dict[ClusterKey, int] = field(default_factory=dict)
    n_clusters: int = 0

    def global_id(self, leaf_id: int, local_id: int) -> int:
        """Global ID of one leaf-local cluster (raises on unknown keys)."""
        return self.mapping[(leaf_id, int(local_id))]

    def for_leaf(self, leaf_id: int) -> dict[int, int]:
        """Local-to-global map restricted to one leaf (sweep splitting)."""
        return {
            local: gid
            for (leaf, local), gid in self.mapping.items()
            if leaf == leaf_id
        }

    def payload_bytes(self) -> int:
        return 20 * len(self.mapping) + 16


def assign_global_ids(root_summary: LeafSummary) -> GlobalIdAssignment:
    """Number the root's cluster groups 0..k-1 (by canonical key order).

    Canonical-key ordering makes the numbering deterministic regardless of
    merge order: the group whose smallest constituent is smallest gets 0.
    """
    assignment = GlobalIdAssignment()
    for gid, key in enumerate(sorted(root_summary.clusters)):
        cluster = root_summary.clusters[key]
        for constituent in cluster.constituents:
            assignment.mapping[constituent] = gid
    assignment.n_clusters = len(root_summary.clusters)
    return assignment
