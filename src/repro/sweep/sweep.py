"""Sweep: relabel with global IDs and assemble/write the final output.

Each leaf receives the global-ID mapping for its local clusters, relabels
its view, and emits ``(point_id, global_label)`` pairs for the points it
*owns* (shadow copies are dropped — the §3.3.2 type-3 duplicate removal).
Because shadow-view leaves can legitimately claim an owned border point
that its owner saw as noise (the owner could not see the remote core's
status), each leaf also emits claims for shadow points; the combination
step keeps the owner's label when the owner found one and otherwise
adopts the smallest claimed global ID — deterministic, and faithful to
"remove all duplicate non-core points from the shadow region".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MergeError
from ..points import NOISE, PointSet

__all__ = ["SweepResult", "sweep_leaf", "combine_leaf_outputs", "combine_core_masks"]


@dataclass
class SweepResult:
    """One leaf's sweep output."""

    leaf_id: int
    owned_ids: np.ndarray  # point ids the leaf owns
    owned_labels: np.ndarray  # their global labels (NOISE allowed)
    claimed_ids: np.ndarray  # shadow point ids this leaf put in a cluster
    claimed_labels: np.ndarray  # their global labels (never NOISE)
    owned_core: np.ndarray | None = None  # authoritative core flags

    def payload_bytes(self) -> int:
        return int(
            self.owned_ids.nbytes
            + self.owned_labels.nbytes
            + self.claimed_ids.nbytes
            + self.claimed_labels.nbytes
            + (self.owned_core.nbytes if self.owned_core is not None else 0)
        )


def sweep_leaf(
    leaf_id: int,
    points: PointSet,
    local_labels: np.ndarray,
    n_owned: int,
    local_to_global: dict[int, int],
    core_mask: np.ndarray | None = None,
) -> SweepResult:
    """Relabel one leaf's clustering with global IDs.

    ``points`` is the leaf's view with the ``n_owned`` partition points
    first and shadow points after (the partition-file layout).
    ``local_to_global`` maps the leaf's local cluster ids to global ids.
    ``core_mask`` (optional, aligned with ``points``) lets the result
    carry the owner-authoritative core flags for the owned points.
    """
    local_labels = np.asarray(local_labels)
    if len(local_labels) != len(points):
        raise MergeError(
            f"labels ({len(local_labels)}) and points ({len(points)}) disagree"
        )
    if not 0 <= n_owned <= len(points):
        raise MergeError(f"n_owned {n_owned} out of range for {len(points)} points")

    global_labels = np.full(len(points), NOISE, dtype=np.int64)
    for local, gid in local_to_global.items():
        global_labels[local_labels == local] = gid
    unknown = (local_labels != NOISE) & (global_labels == NOISE)
    if np.any(unknown):
        missing = np.unique(local_labels[unknown])
        raise MergeError(
            f"leaf {leaf_id}: no global id for local clusters {missing[:5].tolist()}"
        )

    shadow_labels = global_labels[n_owned:]
    shadow_ids = points.ids[n_owned:]
    claimed = shadow_labels != NOISE
    owned_core = None
    if core_mask is not None:
        core_mask = np.asarray(core_mask, dtype=bool)
        if len(core_mask) != len(points):
            raise MergeError(
                f"core_mask ({len(core_mask)}) and points ({len(points)}) disagree"
            )
        owned_core = core_mask[:n_owned].copy()
    return SweepResult(
        leaf_id=leaf_id,
        owned_ids=points.ids[:n_owned].copy(),
        owned_labels=global_labels[:n_owned].copy(),
        claimed_ids=shadow_ids[claimed].copy(),
        claimed_labels=shadow_labels[claimed].copy(),
        owned_core=owned_core,
    )


def combine_leaf_outputs(
    results: list[SweepResult], n_points: int
) -> np.ndarray:
    """Assemble the global labelling from all leaves' sweep outputs.

    Point ids must be ``0..n_points-1`` (the pipeline guarantees this).
    Owner labels win; for owner-noise points claimed by shadow views, the
    smallest claimed global id is adopted.
    """
    labels = np.full(n_points, NOISE, dtype=np.int64)
    seen = np.zeros(n_points, dtype=bool)
    for res in results:
        if np.any(seen[res.owned_ids]):
            raise MergeError(f"leaf {res.leaf_id} re-writes points another leaf owns")
        seen[res.owned_ids] = True
        labels[res.owned_ids] = res.owned_labels
    if not np.all(seen):
        raise MergeError(f"{int(np.count_nonzero(~seen))} points written by no leaf")

    # Adopt claims only where the owner wrote noise; among competing
    # claims the smallest global id wins (determinism).  Owner labels are
    # authoritative and are never overridden by claims.
    claim_adopted = np.zeros(n_points, dtype=bool)
    for res in results:
        if len(res.claimed_ids) == 0:
            continue
        ids = res.claimed_ids
        fresh = (labels[ids] == NOISE) & ~claim_adopted[ids]
        labels[ids[fresh]] = res.claimed_labels[fresh]
        claim_adopted[ids[fresh]] = True
        contested = claim_adopted[ids] & ~fresh
        if np.any(contested):
            current = labels[ids[contested]]
            labels[ids[contested]] = np.minimum(current, res.claimed_labels[contested])
    return labels


def combine_core_masks(results: list[SweepResult], n_points: int) -> np.ndarray:
    """Assemble the global core mask from owner-authoritative flags.

    A point's owner leaf sees its complete Eps-neighborhood (§3.1.1), so
    the owned classification is exact; every point is owned exactly once.
    Raises when a result lacks core flags (the pipeline always passes
    them; external callers may not).
    """
    mask = np.zeros(n_points, dtype=bool)
    for res in results:
        if res.owned_core is None:
            raise MergeError(
                f"leaf {res.leaf_id} carries no core flags; pass core_mask "
                "to sweep_leaf"
            )
        mask[res.owned_ids] = res.owned_core
    return mask
