"""Phase 4: the sweep step (§3.4).

The global cluster IDs travel down the tree "with each level of the tree
reversing the merge operation"; each leaf relabels its points with global
IDs and writes them to the output file in parallel.
"""

from .sweep import SweepResult, sweep_leaf, combine_leaf_outputs, combine_core_masks

__all__ = ["SweepResult", "sweep_leaf", "combine_leaf_outputs", "combine_core_masks"]
