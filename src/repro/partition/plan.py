"""Partition plan datatypes.

A :class:`PartitionPlan` is the root's output in §3.1.3: the boundaries
(here: explicit cell lists, which subsume arbitrary boundary shapes) that
get broadcast to the partitioner leaves.  Each :class:`PartitionSpec` keeps
its cells in *forming order* — a contiguous run of the column-major cell
sequence — which is what lets rebalancing move cells between neighboring
partitions from the run ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PartitionError

__all__ = ["PartitionSpec", "PartitionPlan", "PartitionHints"]

Cell = tuple[int, int]


@dataclass(frozen=True)
class PartitionHints:
    """Advisory partition-splitting directives for the forming root.

    Produced by the tune planner's skew rebalancer
    (:func:`repro.tune.planner.suggest_partition_hints`): ``split`` maps a
    partition id (in forming order) to the number of contiguous chunks
    its Eps-cell run should be cut into.  Splits are applied *after* the
    paper's Fig-2 rebalancing and respect its invariants — a chunk never
    drops below MinPts points — so an infeasible split degrades (fewer
    chunks, or none) rather than producing an invalid plan.  Splitting
    changes the partition count and hence label numbering, which is why
    hints join the label fingerprint (a resume under different hints
    refuses) and are never auto-applied by ``--auto-tune``.
    """

    split: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for pid, k in self.split:
            if pid < 0:
                raise PartitionError(f"split partition id must be >= 0, got {pid}")
            if k < 2:
                raise PartitionError(f"split chunk count must be >= 2, got {k}")

    @classmethod
    def splitting(cls, split: dict[int, int]) -> "PartitionHints":
        """Build from a ``{partition_id: n_chunks}`` mapping."""
        return cls(split=tuple(sorted((int(p), int(k)) for p, k in split.items())))

    def split_map(self) -> dict[int, int]:
        return dict(self.split)

    def as_dict(self) -> dict:
        """Canonical JSON-safe form (fingerprints, plan files)."""
        return {"split": {str(pid): int(k) for pid, k in sorted(self.split)}}

    @classmethod
    def from_dict(cls, payload: dict) -> "PartitionHints":
        return cls.splitting(
            {int(pid): int(k) for pid, k in dict(payload.get("split", {})).items()}
        )


@dataclass
class PartitionSpec:
    """One partition: its cells, their point count, and its shadow region."""

    partition_id: int
    cells: list[Cell] = field(default_factory=list)
    point_count: int = 0
    shadow_cells: set[Cell] = field(default_factory=set)
    shadow_count: int = 0

    @property
    def total_count(self) -> int:
        """Partition plus shadow points — what the leaf actually clusters."""
        return self.point_count + self.shadow_count

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell_set(self) -> set[Cell]:
        return set(self.cells)

    def payload_bytes(self) -> int:
        """Wire size of this spec when the plan is multicast: two int64
        grid coordinates per owned/shadow cell plus the fixed counters."""
        return 16 * (len(self.cells) + len(self.shadow_cells)) + 24


@dataclass
class PartitionPlan:
    """The full partitioning of a dataset's Eps grid."""

    eps: float
    partitions: list[PartitionSpec]
    target_size: float
    final_target_size: float = 0.0

    def __len__(self) -> int:
        return len(self.partitions)

    def payload_bytes(self) -> int:
        """Wire size of the whole plan — what each partitioner leaf
        actually receives in the §3.1.3 boundary broadcast (the
        :mod:`repro.mrnet.packets` accounting hook)."""
        return sum(spec.payload_bytes() for spec in self.partitions) + 24

    def cell_owner(self) -> dict[Cell, int]:
        """Map each grid cell to the partition owning it."""
        owner: dict[Cell, int] = {}
        for spec in self.partitions:
            for cell in spec.cells:
                if cell in owner:
                    raise PartitionError(
                        f"cell {cell} owned by partitions {owner[cell]} and {spec.partition_id}"
                    )
                owner[cell] = spec.partition_id
        return owner

    def validate(self, all_cells: set[Cell], minpts: int | None = None) -> None:
        """Check plan invariants against the histogram's non-empty cells.

        * every non-empty cell is owned by exactly one partition;
        * no partition owns a cell outside the histogram;
        * shadow cells are never owned by the same partition;
        * (optional) every non-empty partition holds >= MinPts points or
          consists of a single cell (the forming algorithm's floor).
        """
        owner = self.cell_owner()
        owned = set(owner)
        if owned != all_cells:
            missing = all_cells - owned
            extra = owned - all_cells
            raise PartitionError(
                f"cell coverage mismatch: {len(missing)} unowned, {len(extra)} spurious"
            )
        for spec in self.partitions:
            overlap = spec.shadow_cells & spec.cell_set()
            if overlap:
                raise PartitionError(
                    f"partition {spec.partition_id} shadows its own cells {sorted(overlap)[:3]}"
                )
            if minpts is not None and spec.cells and spec.point_count < minpts and spec.n_cells > 1:
                raise PartitionError(
                    f"partition {spec.partition_id} has {spec.point_count} < MinPts={minpts} "
                    f"points across {spec.n_cells} cells"
                )

    def nonempty(self) -> list[PartitionSpec]:
        """Partitions that actually own cells."""
        return [p for p in self.partitions if p.cells]

    def size_imbalance(self) -> float:
        """max/mean ratio of total (partition+shadow) counts — load proxy."""
        sizes = [p.total_count for p in self.nonempty()]
        if not sizes:
            return 1.0
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 1.0
