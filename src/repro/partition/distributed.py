"""The distributed partitioner (§3.1.3).

Implementation of the paper's flat-topology MRNet partitioner:

1. the input file is spread across N partitioner leaves (each holds a
   random slice — the input is in arbitrary order);
2. each leaf histograms its slice into Eps×Eps cell counts — "the only
   information needed" — and the counts reduce up to the root;
3. the root serially forms the partition boundaries (§3.1.2) and
   broadcasts them;
4. each leaf writes its points "to the correct position in a single
   output file in parallel" — which makes every leaf contribute a small
   random write to nearly every partition, the I/O pattern behind the
   paper's partition-phase scaling wall — and the root emits the offset
   metadata file.

All file traffic is recorded into an :class:`repro.io.IOTrace` whether or
not a real file is produced (pass ``workdir`` to also materialise the
partition file on disk).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import PartitionError
from ..io.lustre import IOTrace
from ..io.partition_files import PartitionFileSet
from ..merge.representatives import select_representatives
from ..merge.summary import cell_bounds
from ..mrnet import FunctionFilter, Network, NetworkTrace, Topology, Transport
from ..points import PointSet
from ..telemetry.tracer import NOOP_TRACER, PID_PARTITION
from .grid import GridHistogram, cell_of_coords
from .partitioner import form_partitions, partition_points
from .plan import PartitionPlan

__all__ = ["DistributedPartitioner", "PartitionPhaseResult"]

#: Bytes per point record in the partition file (id, x, y, weight).
RECORD_BYTES = 32


def _merge_histograms(payloads: Sequence[GridHistogram]) -> GridHistogram:
    """Histogram-reduction filter body (module-level for pickling)."""
    if not payloads:
        raise PartitionError("histogram reduction with no children")
    merged = payloads[0]
    for other in payloads[1:]:
        merged = merged.merge(other)
    return merged


@dataclass
class _LeafHistogramTask:
    """Payload for the leaf histogram step (picklable).

    ``points`` is either the slice itself or, under a staging transport
    (:class:`repro.runtime.ShmTransport`), its shared-memory ref — the
    worker materializes a zero-copy view either way.
    """

    points: PointSet  # or repro.runtime.PointSetRef
    eps: float

    def payload_bytes(self) -> int:
        """Wire size: a ref-carrying task costs its handle, not the slice."""
        from ..mrnet.packets import payload_nbytes

        return payload_nbytes(self.points) + 16


def _leaf_histogram(task: _LeafHistogramTask) -> GridHistogram:
    from ..runtime.arena import as_pointset

    return GridHistogram.from_points(as_pointset(task.points), task.eps)


@dataclass
class PartitionPhaseResult:
    """Everything the partition phase produces."""

    plan: PartitionPlan
    partitions: list[tuple[PointSet, PointSet]]
    io_trace: IOTrace
    reduce_trace: NetworkTrace
    multicast_trace: NetworkTrace
    map_trace: NetworkTrace
    n_partition_nodes: int
    file_set: PartitionFileSet | None = None
    n_shadow_points_saved: int = 0  # by the representative optimization
    distribute_trace: NetworkTrace | None = None  # network output mode
    root_form_seconds: float = 0.0  # serial plan forming at the root
    route_seconds: dict[int, float] = field(default_factory=dict)  # per leaf
    fault_events: list = field(default_factory=list)  # resilience.FaultEvent

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def virtual_seconds(self) -> float:
        """Parallel (critical-path) time of the partition phase.

        Slowest histogram leaf + reduction path + serial root forming +
        slowest routing leaf — what the phase costs when every
        partitioner node is its own machine.
        """
        from ..mrnet.schedule import map_virtual_time, reduce_critical_path
        from ..mrnet.topology import Topology

        topo = Topology.flat(self.n_partition_nodes)
        return (
            map_virtual_time(self.map_trace)
            + reduce_critical_path(topo, self.reduce_trace)
            + self.root_form_seconds
            + max(self.route_seconds.values(), default=0.0)
        )


class DistributedPartitioner:
    """Run the partition phase over an MRNet flat tree."""

    def __init__(
        self,
        eps: float,
        minpts: int,
        n_partition_nodes: int,
        *,
        transport: Transport | None = None,
        rebalance: bool = True,
        shadow_representatives: bool = False,
        shadow_rep_threshold: int = 64,
        output_mode: str = "lustre",
        tracer=None,
        fault_injector=None,
        resilience=None,
        partition_hints=None,
    ) -> None:
        if n_partition_nodes < 1:
            raise PartitionError("need at least one partitioner node")
        if output_mode not in ("lustre", "network"):
            raise PartitionError(f"unknown output_mode {output_mode!r}")
        self.tracer = tracer or NOOP_TRACER
        self.eps = float(eps)
        self.minpts = int(minpts)
        self.n_partition_nodes = int(n_partition_nodes)
        self.transport = transport
        self.rebalance = rebalance
        self.shadow_representatives = shadow_representatives
        self.shadow_rep_threshold = int(shadow_rep_threshold)
        #: "lustre" writes partitions to the shared file (§3.1.3, the
        #: paper's implementation); "network" sends each contribution as a
        #: message straight to the owning clustering leaf — the paper's
        #: planned fix for the partition-phase I/O wall (§6).
        self.output_mode = output_mode
        #: Optional fault injection + recovery policy for the partitioner
        #: tree (see :mod:`repro.resilience`); faults observed during the
        #: phase surface on ``PartitionPhaseResult.fault_events``.
        self.fault_injector = fault_injector
        self.resilience = resilience
        #: Optional tune-planner split hints (repro.tune): applied by the
        #: forming root after rebalancing; may grow the partition count.
        self.partition_hints = partition_hints

    # ------------------------------------------------------------------ #

    def run_from_file(
        self,
        input_path: str | Path,
        n_partitions: int,
        *,
        workdir: str | Path | None = None,
    ) -> PartitionPhaseResult:
        """Partition a binary point file (§3.1.3's actual data path).

        Each partitioner leaf reads only its contiguous record slice of
        the shared input file — the large sequential reads of Fig 9a —
        instead of the whole dataset ever living in one process.
        """
        from ..io.formats import MAGIC, read_points_binary

        input_path = Path(input_path)
        header_len = len(MAGIC) + 8
        n_total = (input_path.stat().st_size - header_len) // RECORD_BYTES
        n_nodes = min(self.n_partition_nodes, max(1, int(n_total)))
        bounds = np.linspace(0, n_total, n_nodes + 1).astype(np.int64)
        leaf_points = [
            read_points_binary(input_path, offset=int(s), count=int(e - s))
            for s, e in zip(bounds, bounds[1:])
        ]
        return self._run_on_slices(leaf_points, n_partitions, workdir=workdir)

    def run(
        self,
        points: PointSet,
        n_partitions: int,
        *,
        workdir: str | Path | None = None,
    ) -> PartitionPhaseResult:
        """Partition an in-memory point set into ``n_partitions`` pieces."""
        n_nodes = min(self.n_partition_nodes, max(1, len(points)))
        slices = np.array_split(np.arange(len(points)), n_nodes)
        leaf_points = [points.take(idx) for idx in slices]
        return self._run_on_slices(leaf_points, n_partitions, workdir=workdir)

    def _run_on_slices(
        self,
        leaf_points: list[PointSet],
        n_partitions: int,
        *,
        workdir: str | Path | None = None,
    ) -> PartitionPhaseResult:
        io = IOTrace()
        n_nodes = len(leaf_points)
        tracer = self.tracer
        network = Network(
            Topology.flat(n_nodes),
            self.transport,
            tracer=tracer,
            trace_pid=PID_PARTITION,
            fault_injector=self.fault_injector,
            resilience=self.resilience,
        )
        try:
            # 1. Each leaf reads its contiguous slice of the input file.
            for leaf, lp in enumerate(leaf_points):
                io.record(leaf, "read", len(lp) * RECORD_BYTES, sequential=True)

            # 2. Local histograms, reduced to the root.  Under a staging
            #    transport the slices go into shared memory once and the
            #    tasks carry refs — the dataset is never pickled.  Arena
            #    exhaustion degrades to pickling the point sets instead
            #    of failing the run (stage_pointset_safe).
            payloads = leaf_points
            if getattr(self.transport, "supports_staging", False):
                from ..runtime.executor import stage_pointset_safe

                with tracer.span(
                    "runtime.stage",
                    cat="runtime",
                    pid=PID_PARTITION,
                    n_pointsets=len(leaf_points),
                ):
                    payloads = [
                        stage_pointset_safe(self.transport, lp)
                        for lp in leaf_points
                    ]
            tasks = [_LeafHistogramTask(points=p, eps=self.eps) for p in payloads]
            histograms, map_trace = network.map_leaves(
                _leaf_histogram, tasks, name="partition.histogram"
            )
            histogram, reduce_trace = network.reduce(
                histograms,
                FunctionFilter(_merge_histograms),
                name="partition.histogram",
            )

            # 3. Root forms partitions serially (§3.1.2).
            t0 = time.perf_counter()
            with tracer.span(
                "partition.form",
                cat="partition",
                pid=PID_PARTITION,
                tid=0,
                n_partitions=n_partitions,
            ):
                plan = form_partitions(
                    histogram,
                    n_partitions,
                    self.minpts,
                    rebalance=self.rebalance,
                    hints=self.partition_hints,
                )
            root_form_seconds = time.perf_counter() - t0

            # 4. Boundaries broadcast back to the leaves.
            plans, multicast_trace = network.multicast(plan, name="partition.plan")

            # 5. Leaves emit their contributions: either offset writes to the
            #    shared partition file (the paper's path) or messages straight
            #    to the clustering leaves (the §6 future-work path).
            contributions = []
            route_seconds: dict[int, float] = {}
            for leaf, (lp, p) in enumerate(zip(leaf_points, plans)):
                t0 = time.perf_counter()
                contributions.append(partition_points(lp, p))
                route_seconds[leaf] = time.perf_counter() - t0
                tracer.add_span(
                    "partition.route",
                    t0,
                    t0 + route_seconds[leaf],
                    cat="partition",
                    pid=PID_PARTITION,
                    tid=leaf,
                    n_points=len(lp),
                )
        finally:
            network.close()
        fault_events = network.fault_log.events
        distribute = NetworkTrace() if self.output_mode == "network" else None
        partitions: list[tuple[PointSet, PointSet]] = []
        saved = 0
        # Split hints can grow the plan past the requested count — walk
        # the plan's actual partitions, not the request.
        for pid in range(len(plan.partitions)):
            own_parts = []
            shadow_parts = []
            for leaf, contrib in enumerate(contributions):
                own, shadow = contrib[pid]
                if self.shadow_representatives and len(shadow):
                    shadow, leaf_saved = self._thin_shadow(shadow)
                    saved += leaf_saved
                for part, parts_list in ((own, own_parts), (shadow, shadow_parts)):
                    if not len(part):
                        continue
                    if distribute is not None:
                        # src = partitioner leaf, dst = clustering leaf;
                        # the two trees are disjoint process sets, so we
                        # key the destination by partition id.
                        distribute.record(leaf, pid, "partition-data", part)
                    else:
                        io.record(
                            leaf, "write", len(part) * RECORD_BYTES, sequential=False
                        )
                    parts_list.append(part)
            own_all = _concat(own_parts)
            shadow_all = _concat(shadow_parts)
            partitions.append((own_all, shadow_all))

        if distribute is None:
            # Root writes the metadata file.
            io.record(0, "write", 64 * n_partitions, sequential=True)

        file_set = None
        if workdir is not None and self.output_mode == "network":
            raise PartitionError("workdir is meaningless with network output")
        if workdir is not None:
            workdir = Path(workdir)
            workdir.mkdir(parents=True, exist_ok=True)
            file_set = PartitionFileSet(workdir / "partitions.bin")
            file_set.write(partitions)

        return PartitionPhaseResult(
            plan=plan,
            partitions=partitions,
            io_trace=io,
            reduce_trace=reduce_trace,
            multicast_trace=multicast_trace,
            map_trace=map_trace,
            n_partition_nodes=n_nodes,
            file_set=file_set,
            n_shadow_points_saved=saved,
            distribute_trace=distribute,
            root_form_seconds=root_form_seconds,
            route_seconds=route_seconds,
            fault_events=fault_events,
        )

    # ------------------------------------------------------------------ #

    def _thin_shadow(self, shadow: PointSet) -> tuple[PointSet, int]:
        """§3.1.3 optional optimization: per very dense shadow cell, write
        only geometric representative points instead of the full contents.

        "This optimization drastically reduces the amount of data written
        to Lustre and local DBSCAN quality is preserved, but it also may
        cause the merge algorithm to occasionally miss the opportunity to
        combine clusters" — hence default-off.
        """
        cells = cell_of_coords(shadow.coords, self.eps)
        keep: list[np.ndarray] = []
        saved = 0
        order = np.lexsort((cells[:, 1], cells[:, 0]))
        sc = cells[order]
        change = np.empty(len(sc), dtype=bool)
        change[0] = True
        change[1:] = np.any(sc[1:] != sc[:-1], axis=1)
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], len(sc))
        for (cx, cy), s, e in zip(sc[starts], starts, ends):
            idx = order[s:e]
            if len(idx) <= self.shadow_rep_threshold:
                keep.append(idx)
                continue
            rel = select_representatives(
                shadow.coords[idx], cell_bounds((int(cx), int(cy)), self.eps)
            )
            keep.append(idx[rel])
            saved += len(idx) - len(rel)
        if not keep:
            return shadow, 0
        kept = np.sort(np.concatenate(keep))
        return shadow.take(kept), saved


def _concat(parts: list[PointSet]) -> PointSet:
    if not parts:
        return PointSet.empty()
    out = parts[0]
    for p in parts[1:]:
        out = out.concat(p)
    return out
