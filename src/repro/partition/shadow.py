"""Shadow-region computation (§3.1.1).

"The shadow region is the set of points not already included in the
partition that lie Eps distance from the partition's boundary."  Because
partitions are built from Eps×Eps grid cells, "the shadow region for each
partition simply becomes the set of grid neighbors not already in the
partition" — every point within Eps of a partition point must lie in one
of the partition's cells or their 8-neighbors, so with the shadow added,
every partition point's Eps-neighborhood is complete within the partition.
"""

from __future__ import annotations

from .grid import GRID_NEIGHBOR_OFFSETS, GridHistogram
from .plan import PartitionPlan, PartitionSpec

__all__ = ["shadow_cells_of", "add_shadow_regions"]

Cell = tuple[int, int]


def shadow_cells_of(cells: set[Cell], histogram: GridHistogram) -> set[Cell]:
    """Non-empty grid neighbors of ``cells`` that are not in ``cells``.

    Empty neighbor cells are skipped — they contribute no shadow points,
    and keeping them out makes shadow *counts* exact.
    """
    shadow: set[Cell] = set()
    for cx, cy in cells:
        for dx, dy in GRID_NEIGHBOR_OFFSETS:
            neighbor = (cx + dx, cy + dy)
            if neighbor not in cells and neighbor in histogram.counts:
                shadow.add(neighbor)
    return shadow


def refresh_shadow(spec: PartitionSpec, histogram: GridHistogram) -> None:
    """Recompute one partition's shadow cells and count in place."""
    cells = spec.cell_set()
    spec.shadow_cells = shadow_cells_of(cells, histogram)
    spec.shadow_count = sum(histogram.count(c) for c in spec.shadow_cells)


def add_shadow_regions(plan: PartitionPlan, histogram: GridHistogram) -> None:
    """Attach shadow regions to every partition of a plan (in place)."""
    for spec in plan.partitions:
        refresh_shadow(spec, histogram)
