"""Eps×Eps grid histogram (§3.1.2–3.1.3).

The partitioning algorithm "does not use information about each individual
point.  The only information needed is a grid of Eps x Eps cells and the
point count for each cell" — which is why the distributed partitioner only
reduces per-cell counts to the root.  :class:`GridHistogram` is that
reduced object: a sparse map from global cell coordinates to counts, with
the column-major traversal order the forming algorithm iterates in
("first along the y axis, and then along the x axis").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..points import PointSet

__all__ = ["GridHistogram", "cell_of_coords", "GRID_NEIGHBOR_OFFSETS"]

#: The 8-neighborhood used for shadow regions and merge adjacency.
GRID_NEIGHBOR_OFFSETS: tuple[tuple[int, int], ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1) if (dx, dy) != (0, 0)
)


def cell_of_coords(coords: np.ndarray, eps: float) -> np.ndarray:
    """Global Eps-cell coordinates of each point, shape ``(n, 2)`` int64.

    Uses the same global frame as :class:`repro.dbscan.GridIndex`, so the
    partitioner, the clustering leaves and the merge rules all agree on
    cell identity.
    """
    if eps <= 0:
        raise ConfigError(f"eps must be positive, got {eps}")
    return np.floor(np.asarray(coords, dtype=np.float64) / eps).astype(np.int64)


@dataclass
class GridHistogram:
    """Sparse per-cell point counts over the Eps grid."""

    eps: float
    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ConfigError(f"eps must be positive, got {self.eps}")

    # ------------------------------------------------------------------ #
    # Construction / reduction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_points(cls, points: PointSet, eps: float) -> "GridHistogram":
        """Histogram one (local) point set."""
        hist = cls(eps=eps)
        if len(points) == 0:
            return hist
        cells = cell_of_coords(points.coords, eps)
        # Vectorised group-count via lexicographic unique.
        order = np.lexsort((cells[:, 1], cells[:, 0]))
        sc = cells[order]
        change = np.empty(len(sc), dtype=bool)
        change[0] = True
        change[1:] = np.any(sc[1:] != sc[:-1], axis=1)
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], len(sc))
        for (cx, cy), s, e in zip(sc[starts], starts, ends):
            hist.counts[(int(cx), int(cy))] = int(e - s)
        return hist

    def merge(self, other: "GridHistogram") -> "GridHistogram":
        """Reduce two histograms (the MRNet filter operation).

        Histograms must share the same eps; counts add cell-wise.
        """
        if other.eps != self.eps:
            raise ConfigError(f"cannot merge histograms with eps {self.eps} and {other.eps}")
        merged = GridHistogram(eps=self.eps, counts=dict(self.counts))
        for cell, count in other.counts.items():
            merged.counts[cell] = merged.counts.get(cell, 0) + count
        return merged

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def total_points(self) -> int:
        return sum(self.counts.values())

    @property
    def n_cells(self) -> int:
        return len(self.counts)

    def column_major_cells(self) -> list[tuple[int, int]]:
        """Non-empty cells in forming order: y fastest, then x (§3.1.2)."""
        return sorted(self.counts, key=lambda c: (c[0], c[1]))

    def count(self, cell: tuple[int, int]) -> int:
        """Count of one cell (0 when empty)."""
        return self.counts.get(cell, 0)

    def nonempty_neighbors(self, cell: tuple[int, int]) -> list[tuple[int, int]]:
        """Non-empty grid neighbors of ``cell`` (up to 8)."""
        cx, cy = cell
        return [
            (cx + dx, cy + dy)
            for dx, dy in GRID_NEIGHBOR_OFFSETS
            if (cx + dx, cy + dy) in self.counts
        ]

    def payload_bytes(self) -> int:
        """Approximate wire size of this histogram (cell coords + count)."""
        return 20 * self.n_cells
