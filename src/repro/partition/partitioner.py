"""Partition forming and rebalancing (§3.1.2, Fig 2).

The algorithm works purely on the Eps-grid histogram:

1. **Forming.**  Walk the non-empty cells in column-major order (y fastest)
   and accumulate them into the current partition until adding the next
   cell would exceed the target size (an equal share of the points).  A
   cell may exceed the target only when the partition is still empty (one
   huge cell = one partition) or when it is the final partition (which
   absorbs the remainder).  A running difference of each closed
   partition's size from the target shrinks subsequent targets
   proportionately (never below MinPts points), so early oversized cells
   do not systematically starve the tail.

2. **Shadow regions** are attached (grid neighbors not in the partition).

3. **Rebalancing** (Fig 2c-d).  Forming keeps partitions *below* target,
   so the collective deficit lands on the last partition (the populous
   Eastern US in Fig 2a).  The final target is recomputed as the mean of
   partition sizes *including shadows*; then, walking backward from the
   last partition, cells are moved from the front of each partition's run
   to the previous partition until the partition drops below
   ``1.075 × final_target`` (the paper's empirically chosen threshold).
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..points import PointSet
from .grid import GridHistogram, cell_of_coords
from .plan import PartitionHints, PartitionPlan, PartitionSpec
from .shadow import add_shadow_regions, refresh_shadow

__all__ = [
    "form_partitions",
    "partition_points",
    "apply_partition_hints",
    "REBALANCE_THRESHOLD_FACTOR",
]

#: "The threshold is set to 1.075 × finaltargetsize because it worked well
#: in practice on our datasets."
REBALANCE_THRESHOLD_FACTOR: float = 1.075


def form_partitions(
    histogram: GridHistogram,
    n_partitions: int,
    minpts: int,
    *,
    rebalance: bool = True,
    threshold_factor: float = REBALANCE_THRESHOLD_FACTOR,
    hints: PartitionHints | None = None,
) -> PartitionPlan:
    """Form ``n_partitions`` partitions from a grid histogram.

    Returns a plan whose partitions are contiguous runs of the
    column-major cell order, each with its shadow region attached.  When
    the histogram has fewer non-empty cells than ``n_partitions``, the
    excess partitions are empty (their leaves receive no work).
    """
    if n_partitions < 1:
        raise PartitionError(f"n_partitions must be >= 1, got {n_partitions}")
    if minpts < 1:
        raise PartitionError(f"minpts must be >= 1, got {minpts}")

    cells = histogram.column_major_cells()
    total = histogram.total_points
    target = total / n_partitions if n_partitions else 0.0

    specs: list[PartitionSpec] = []
    current = PartitionSpec(partition_id=0)
    running_diff = 0.0
    effective_target = target

    for cell in cells:
        c = histogram.count(cell)
        is_final = len(specs) == n_partitions - 1
        if (
            current.cells
            and not is_final
            and current.point_count + c > effective_target
        ):
            running_diff += current.point_count - target
            specs.append(current)
            current = PartitionSpec(partition_id=len(specs))
            # Shrink the next target while we are ahead of schedule, with
            # MinPts as the floor (§3.1.2's second profitability rule).
            effective_target = max(target - max(running_diff, 0.0), float(minpts))
        current.cells.append(cell)
        current.point_count += c
    specs.append(current)
    while len(specs) < n_partitions:
        specs.append(PartitionSpec(partition_id=len(specs)))

    plan = PartitionPlan(eps=histogram.eps, partitions=specs, target_size=target)
    add_shadow_regions(plan, histogram)

    if rebalance:
        _rebalance(plan, histogram, minpts, threshold_factor)

    if hints is not None:
        apply_partition_hints(plan, histogram, minpts, hints)

    return plan


def apply_partition_hints(
    plan: PartitionPlan,
    histogram: GridHistogram,
    minpts: int,
    hints: PartitionHints,
) -> None:
    """Apply tune-planner split hints to a formed plan (in place).

    Each hinted partition's contiguous cell run is cut into chunks
    balanced by cumulative point count; the first chunk keeps the
    partition's id and the rest append to the plan (the partition count
    grows).  Infeasible splits degrade: the chunk count drops until every
    chunk holds at least MinPts points and one cell, and a partition that
    cannot split at all is left alone.  Shadows are recomputed from
    scratch afterwards — split boundaries create new partition frontiers.
    """
    split_any = False
    for pid, k in sorted(hints.split_map().items()):
        if not 0 <= pid < len(plan.partitions):
            continue
        spec = plan.partitions[pid]
        chunks = _split_spec_cells(spec, histogram, minpts, k)
        if chunks is None:
            continue
        split_any = True
        head, *rest = chunks
        spec.cells = head
        spec.point_count = sum(histogram.count(c) for c in head)
        for cells in rest:
            plan.partitions.append(
                PartitionSpec(
                    partition_id=len(plan.partitions),
                    cells=cells,
                    point_count=sum(histogram.count(c) for c in cells),
                )
            )
    if split_any:
        add_shadow_regions(plan, histogram)


def _split_spec_cells(
    spec: PartitionSpec,
    histogram: GridHistogram,
    minpts: int,
    k: int,
) -> list[list[tuple[int, int]]] | None:
    """Cut a spec's cell run into <= k point-balanced chunks, each with
    >= MinPts points; None when no split (k >= 2) is feasible."""
    counts = [histogram.count(c) for c in spec.cells]
    total = sum(counts)
    k = min(k, len(spec.cells), total // max(minpts, 1))
    while k >= 2:
        target = total / k
        chunks: list[list[tuple[int, int]]] = []
        acc: list[tuple[int, int]] = []
        acc_count = 0
        for cell, count in zip(spec.cells, counts):
            remaining_chunks = k - len(chunks)
            remaining_cells = len(spec.cells) - sum(len(c) for c in chunks) - len(acc)
            if (
                acc
                and remaining_chunks > 1
                and acc_count >= max(target, float(minpts))
                and remaining_cells >= remaining_chunks - 1
            ):
                chunks.append(acc)
                acc, acc_count = [], 0
            acc.append(cell)
            acc_count += count
        chunks.append(acc)
        if len(chunks) == k and all(
            sum(histogram.count(c) for c in chunk) >= minpts for chunk in chunks
        ):
            return chunks
        k -= 1
    return None


def _rebalance(
    plan: PartitionPlan,
    histogram: GridHistogram,
    minpts: int,
    threshold_factor: float,
) -> None:
    """Fig 2c: move cells backward-to-forward until below the threshold."""
    nonempty = plan.nonempty()
    if len(nonempty) < 2:
        plan.final_target_size = nonempty[0].total_count if nonempty else 0.0
        return
    final_target = sum(p.total_count for p in nonempty) / len(nonempty)
    threshold = threshold_factor * final_target
    plan.final_target_size = final_target

    # "Starting at the last partition formed we remove a grid cell, update
    # the shadow region, and repeat until a specified threshold size is
    # reached.  The removed grid cells are then added to the second-last
    # partition ... repeated for each partition, working sequentially
    # backward through the partitions until we reach the first."
    #
    # The shadow region is maintained *incrementally* per removal (O(1)
    # neighborhood work instead of a full recomputation), which keeps
    # rebalancing O(cells) overall — equivalent to refreshing after every
    # move, just not quadratic.
    from collections import deque

    from .grid import GRID_NEIGHBOR_OFFSETS

    for i in range(len(nonempty) - 1, 0, -1):
        spec = nonempty[i]
        prev = nonempty[i - 1]
        cells = deque(spec.cells)
        cell_set = set(cells)
        shadow = set(spec.shadow_cells)
        shadow_count = spec.shadow_count
        moved = False
        while len(cells) > 1 and spec.point_count + shadow_count > threshold:
            head = cells[0]
            head_count = histogram.count(head)
            if spec.point_count - head_count < minpts:
                break  # never shrink a partition below MinPts points
            if spec.point_count - head_count < 0.5 * threshold:
                # Shadow regions alone can exceed the threshold for thin
                # partitions abutting dense areas; draining such a
                # partition would just snowball its points backward (all
                # the way to partition 0, which has nowhere to shed).
                # Keep at least half a target of own points instead.
                break
            cells.popleft()
            cell_set.remove(head)
            spec.point_count -= head_count
            prev.cells.append(head)
            prev.point_count += head_count
            moved = True
            # Incremental shadow update around the removed cell: the cell
            # itself may become shadow, and its shadow neighbors may stop
            # being shadow if it was their only partition contact.
            hx, hy = head
            if any(
                (hx + dx, hy + dy) in cell_set for dx, dy in GRID_NEIGHBOR_OFFSETS
            ):
                if head not in shadow:
                    shadow.add(head)
                    shadow_count += head_count
            for dx, dy in GRID_NEIGHBOR_OFFSETS:
                cand = (hx + dx, hy + dy)
                if cand not in shadow:
                    continue
                if not any(
                    (cand[0] + ddx, cand[1] + ddy) in cell_set
                    for ddx, ddy in GRID_NEIGHBOR_OFFSETS
                ):
                    shadow.remove(cand)
                    shadow_count -= histogram.count(cand)
        spec.cells = list(cells)
        spec.shadow_cells = shadow
        spec.shadow_count = shadow_count
        if moved:
            refresh_shadow(prev, histogram)


def partition_points(
    points: PointSet, plan: PartitionPlan
) -> list[tuple[PointSet, PointSet]]:
    """Materialise a plan: per-partition ``(points, shadow_points)``.

    Partition points are those whose Eps-cell the partition owns; shadow
    points are those in the partition's shadow cells (they are partition
    points of a neighboring partition — the duplication is the §3.1.1
    correctness mechanism).
    """
    n = len(points)
    cells = cell_of_coords(points.coords, plan.eps) if n else np.empty((0, 2), np.int64)
    owner_of_cell = plan.cell_owner()

    # Group point indices by cell once (sparse dict of arrays).
    members: dict[tuple[int, int], np.ndarray] = {}
    if n:
        order = np.lexsort((cells[:, 1], cells[:, 0]))
        sc = cells[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = np.any(sc[1:] != sc[:-1], axis=1)
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        for (cx, cy), s, e in zip(sc[starts], starts, ends):
            members[(int(cx), int(cy))] = order[s:e]

    unowned = [c for c in members if c not in owner_of_cell]
    if unowned:
        raise PartitionError(
            f"{len(unowned)} non-empty cells not covered by the plan, e.g. {unowned[:3]}"
        )

    out: list[tuple[PointSet, PointSet]] = []
    for spec in plan.partitions:
        own_chunks = [members[c] for c in spec.cells if c in members]
        own_idx = (
            np.sort(np.concatenate(own_chunks)) if own_chunks else np.empty(0, np.int64)
        )
        shadow_chunks = [members[c] for c in sorted(spec.shadow_cells) if c in members]
        shadow_idx = (
            np.sort(np.concatenate(shadow_chunks))
            if shadow_chunks
            else np.empty(0, np.int64)
        )
        out.append((points.take(own_idx), points.take(shadow_idx)))
    return out
