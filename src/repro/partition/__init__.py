"""Phase 1: the Eps-grid partitioner (§3.1).

The partitioner divides the input into one partition per clustering leaf
such that (1) every partition merges back into a result equivalent to
serial DBSCAN — guaranteed by *shadow regions*; (2) partitions carry
roughly equal point counts — the computational-cost proxy that works
*because* of the dense-box optimization; and (3) the work itself
distributes across nodes — the grid histogram is the only global state.
"""

from .grid import GridHistogram
from .plan import PartitionHints, PartitionPlan, PartitionSpec
from .partitioner import apply_partition_hints, form_partitions, partition_points
from .shadow import shadow_cells_of, add_shadow_regions
from .dirty import adopt_cells, dirty_partitions, touched_cells_of
from .distributed import DistributedPartitioner, PartitionPhaseResult

__all__ = [
    "GridHistogram",
    "PartitionHints",
    "PartitionPlan",
    "PartitionSpec",
    "form_partitions",
    "partition_points",
    "apply_partition_hints",
    "shadow_cells_of",
    "add_shadow_regions",
    "adopt_cells",
    "dirty_partitions",
    "touched_cells_of",
    "DistributedPartitioner",
    "PartitionPhaseResult",
]
