"""Touched-cell → dirty-partition mapping for incremental re-clustering.

An ingested batch lands in a set of Eps-grid cells.  Only two kinds of
partitions can see different points afterwards, and therefore need their
leaf re-clustered:

* the partition that **owns** a touched cell (its own points changed);
* any partition whose **shadow region** contains a touched cell — by
  construction (§3.1.1) exactly the partitions owning one of the cell's
  8-neighbors, since a partition's shadow is the neighbor set of its
  owned cells.

Every other partition's own *and* shadow point sets are untouched, so
its cached leaf output (labels, core mask, summary) remains valid and
the merge tree can recombine it as-is.  This is the locality the serve
subsystem (:mod:`repro.serve`) exploits: dirty leaves ≪ all leaves for
a spatially small batch.

A batch may also land in a cell that was *empty* when the plan was
formed — owned by nobody.  :func:`adopt_cells` assigns each such cell to
a deterministic existing partition (the smallest-id owner among its
non-empty 8-neighbors, falling back to the least-loaded partition), so
the plan keeps its exact-cover invariant without re-forming boundaries.
"""

from __future__ import annotations

from .grid import GRID_NEIGHBOR_OFFSETS
from .plan import PartitionPlan

__all__ = ["touched_cells_of", "dirty_partitions", "adopt_cells"]

Cell = tuple[int, int]


def touched_cells_of(batch_cells) -> set[Cell]:
    """Normalise a batch's cell array/iterable to a set of cell tuples."""
    return {(int(cx), int(cy)) for cx, cy in batch_cells}


def dirty_partitions(
    plan: PartitionPlan, touched: set[Cell], *, owner: dict[Cell, int] | None = None
) -> set[int]:
    """Partition ids whose leaf must re-cluster after ``touched`` cells
    received (or lost) points.

    The set is exactly: owners of touched cells, plus owners of any
    8-neighbor of a touched cell (the shadow-halo spillover — those
    partitions see the touched cell in their shadow region).  Touched
    cells owned by nobody are ignored here; run :func:`adopt_cells`
    first so every non-empty cell has an owner.
    """
    if owner is None:
        owner = plan.cell_owner()
    dirty: set[int] = set()
    for cell in touched:
        pid = owner.get(cell)
        if pid is not None:
            dirty.add(pid)
        cx, cy = cell
        for dx, dy in GRID_NEIGHBOR_OFFSETS:
            pid = owner.get((cx + dx, cy + dy))
            if pid is not None:
                dirty.add(pid)
    return dirty


def adopt_cells(
    plan: PartitionPlan, new_cells: set[Cell], *, owner: dict[Cell, int] | None = None
) -> dict[Cell, int]:
    """Assign previously-unowned (empty-at-plan-time) cells to partitions.

    Each new cell goes to the smallest-id partition owning one of its
    8-neighbors — keeping it adjacent to its future shadow sources — or,
    for an isolated cell, to the partition with the fewest points
    (smallest id on ties).  Cells are processed in sorted order and the
    owner map is updated as cells are adopted, so a clump of new cells
    lands coherently in one partition.  Returns ``{cell: partition_id}``
    for the adopted cells; ``plan`` is updated in place (the cell is
    appended to the adopting spec's cell list).
    """
    if owner is None:
        owner = plan.cell_owner()
    adopted: dict[Cell, int] = {}
    for cell in sorted(new_cells):
        if cell in owner:
            continue
        cx, cy = cell
        neighbor_owners = [
            owner[(cx + dx, cy + dy)]
            for dx, dy in GRID_NEIGHBOR_OFFSETS
            if (cx + dx, cy + dy) in owner
        ]
        if neighbor_owners:
            pid = min(neighbor_owners)
        else:
            nonempty = plan.nonempty()
            pool = nonempty if nonempty else plan.partitions
            pid = min(pool, key=lambda s: (s.total_count, s.partition_id)).partition_id
        plan.partitions[pid].cells.append(cell)
        owner[cell] = pid
        adopted[cell] = pid
    return adopted
